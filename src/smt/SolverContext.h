//===- smt/SolverContext.h - Incremental assumption-based SMT --*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The incremental face of the SMT layer: a solver context with push/pop
/// scopes, persistent assertions, and assumption-based satisfiability
/// checks returning value-typed models and unsat cores.
///
/// This is the API the CEGAR loop's query patterns want. Abstract
/// reachability asserts one abstract post-image and flips assumption
/// literals for a whole batch of entailment checks; counterexample
/// analysis asserts the common SSA path prefix once per refinement and
/// re-checks only the divergent suffix. Underneath, one CDCL core and one
/// Tseitin encoding persist for the context's lifetime — clauses, learned
/// clauses, and theory lemmas survive across checks and across pop() —
/// and the conjunction theory solver retains asserted literals in a cached
/// simplex tableau so an unchanged prefix is never re-encoded or re-solved.
///
/// Scoping uses selector literals: every scope owns a fresh SAT variable
/// s, clauses asserted in the scope are guarded as (!s \/ C), and checks
/// assume the selectors of all live scopes. pop() permanently disables the
/// selector, so everything ever learned remains sound. Assumptions are
/// decided before any free decision, which keeps learned clauses
/// assumption-independent; failed assumption sets come back as unsat
/// cores.
///
/// Restrictions: asserted terms and assumptions must be quantifier-free
/// and store-free. Instantiate quantifiers (smt/QuantInst.h) and eliminate
/// array writes (smt/ArrayElim.h) on the *whole* query first — array-write
/// elimination is a whole-formula transformation and must not be run
/// conjunct-by-conjunct.
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_SMT_SOLVERCONTEXT_H
#define PATHINV_SMT_SOLVERCONTEXT_H

#include "logic/TermRewrite.h"
#include "smt/SatSolver.h"
#include "smt/TheoryConj.h"

#include <map>
#include <optional>

namespace pathinv {
namespace smt {

/// A satisfying assignment, value-typed: copies remain valid regardless of
/// later checks, pops, or the context's destruction.
class Model {
public:
  Model() = default;
  explicit Model(std::map<const Term *, Rational, TermIdLess> V)
      : Values(std::move(V)) {}

  bool empty() const { return Values.empty(); }
  size_t size() const { return Values.size(); }

  /// Value of an arithmetic atom (variable, array read, application), or
  /// nullopt when the atom was unconstrained by the query.
  std::optional<Rational> value(const Term *Atom) const {
    auto It = Values.find(Atom);
    if (It == Values.end())
      return std::nullopt;
    return It->second;
  }

  const std::map<const Term *, Rational, TermIdLess> &values() const {
    return Values;
  }

private:
  std::map<const Term *, Rational, TermIdLess> Values;
};

/// An unsatisfiable subset of a check's assumptions (value-typed). An
/// empty assumption list with usesAssertions() set means the asserted
/// state is inconsistent on its own.
class UnsatCore {
public:
  UnsatCore() = default;
  UnsatCore(std::vector<const Term *> Failed, bool FromAssertions)
      : Failed(std::move(Failed)), FromAssertions(FromAssertions) {}

  /// The failed assumptions, in no particular order.
  const std::vector<const Term *> &assumptions() const { return Failed; }
  /// True when the context's asserted formulas may participate in the
  /// inconsistency. Exact for literal-conjunction assertions (tracked in
  /// the theory base) and for scoped assertions (selector-tracked);
  /// conservatively true whenever permanent boolean-structured assertions
  /// are live, and always true for empty cores.
  bool usesAssertions() const { return FromAssertions; }
  bool empty() const { return Failed.empty(); }
  bool contains(const Term *Assumption) const {
    for (const Term *A : Failed)
      if (A == Assumption)
        return true;
    return false;
  }

private:
  std::vector<const Term *> Failed;
  bool FromAssertions = true;
};

/// Outcome of one checkSat(): a status plus the model (Sat) or core
/// (Unsat), both value-typed.
///
/// Unknown means the job's ResourceController tripped mid-check: neither
/// isSat() nor isUnsat() holds, the model and core are empty, and the
/// context remains valid and reusable (scopes intact, tableau consistent).
/// Since callers act on isSat()/isUnsat(), treating Unknown as "not
/// proven" is sound everywhere: a feasibility check stays conservatively
/// feasible, an entailment stays conservatively non-entailed.
class CheckResult {
public:
  enum class Status : uint8_t { Sat, Unsat, Unknown };

  static CheckResult sat(Model M) {
    CheckResult R;
    R.St = Status::Sat;
    R.TheModel = std::move(M);
    return R;
  }
  static CheckResult unsat(UnsatCore C) {
    CheckResult R;
    R.St = Status::Unsat;
    R.TheCore = std::move(C);
    return R;
  }
  static CheckResult unknown() {
    CheckResult R;
    R.St = Status::Unknown;
    return R;
  }

  Status status() const { return St; }
  bool isSat() const { return St == Status::Sat; }
  bool isUnsat() const { return St == Status::Unsat; }
  bool isUnknown() const { return St == Status::Unknown; }
  /// The model (empty unless Sat).
  const Model &model() const { return TheModel; }
  /// The unsat core (empty unless Unsat).
  const UnsatCore &core() const { return TheCore; }

private:
  CheckResult() = default;
  Status St = Status::Sat;
  Model TheModel;
  UnsatCore TheCore;
};

/// Statistics of one context, structured per layer.
struct ContextStats {
  uint64_t Checks = 0;            ///< checkSat() calls.
  uint64_t ConjunctionChecks = 0; ///< Served by the theory fast path.
  uint64_t LazyChecks = 0;        ///< Full CDCL(T) loop.
  uint64_t TheoryChecks = 0;      ///< Conjunction-solver invocations.
  uint64_t Assertions = 0;
  uint64_t Pushes = 0;
  uint64_t Pops = 0;
  // Learned-clause garbage collection (long-lived contexts would
  // otherwise grow their clause database without bound).
  uint64_t LearnedPurges = 0;   ///< purgeLearned() invocations.
  uint64_t ClausesPurged = 0;   ///< Redundant clauses deleted, cumulative.
  uint64_t RedundantClauses = 0; ///< Currently stored deletable clauses.
  // CDCL core (cumulative over the context's lifetime).
  uint64_t SatConflicts = 0;
  uint64_t SatDecisions = 0;
  uint64_t SatPropagations = 0;
  // Theory base tableau.
  uint64_t BaseReuses = 0;
  uint64_t BaseRebuilds = 0;
  // Scoped branch-and-bound over the cached tableau (integrality and
  // disequality splits served without abandoning the base).
  uint64_t BnbNodes = 0;        ///< Branch nodes explored.
  uint64_t BnbRepairPivots = 0; ///< Pivots repairing branch-bound scopes.
  uint64_t BnbLemmas = 0;       ///< Branch-derived bound lemmas learned.
  uint64_t ScratchFallbacks = 0; ///< Queries that left the cached tableau.
  uint64_t CutRows = 0;         ///< Distilled cut-row installs on the base.
};

/// Incremental SMT context. See the file comment for the architecture.
class SolverContext {
public:
  explicit SolverContext(TermManager &TM) : TM(TM), Theory(TM) {}
  SolverContext(const SolverContext &) = delete;
  SolverContext &operator=(const SolverContext &) = delete;

  TermManager &termManager() const { return TM; }

  /// Opens a scope; assertions made until the matching pop() are retracted
  /// by it. Scopes nest arbitrarily.
  void push();
  /// Closes the innermost scope, retracting its assertions. Learned
  /// clauses and theory lemmas are kept (they are valid regardless).
  void pop();
  size_t scopeDepth() const { return Scopes.size(); }

  /// Asserts quantifier-free, store-free \p F in the current scope.
  /// Assertions at depth 0 are permanent.
  void assertTerm(const Term *F);

  /// True when any assertion is live (at any depth).
  bool hasAssertions() const { return !Assertions.empty(); }

  /// Decides the conjunction of all live assertions, optionally under
  /// additional assumption formulas (quantifier-free, store-free; not
  /// retained). On Unsat the core names the responsible assumptions.
  CheckResult checkSat() { return checkSat({}); }
  CheckResult checkSat(const std::vector<const Term *> &Assumptions);

  /// Order-sensitive hash of the live assertion stack. Two equal
  /// fingerprints mean the same asserted state, so results of pure checks
  /// may be cached keyed by (fingerprint, formula).
  uint64_t assertionFingerprint() const { return Fingerprint; }

  /// Budget for deletable clauses (CDCL-learned clauses and theory
  /// lemmas). When a checkSat() leaves more than this many stored, the
  /// least active half is garbage-collected — so a long-lived context's
  /// clause database stays bounded no matter how many scopes it churns
  /// through. 0 disables purging.
  void setLearnedClauseBudget(size_t Budget) { LearnedBudget = Budget; }
  size_t learnedClauseBudget() const { return LearnedBudget; }

  /// Budgets for the theory solver's scoped branch-and-bound (nodes per
  /// query, branch depth). A zero node budget disables the scoped search:
  /// every split-requiring query re-solves from scratch, the
  /// pre-branch-and-bound behavior (bench harness reference mode).
  void setTheoryBnbBudgets(uint32_t MaxNodes, uint32_t MaxDepth) {
    Theory.setBnbBudgets(MaxNodes, MaxDepth);
  }

  /// Snapshot of the context's statistics.
  ContextStats stats() const;

private:
  struct Scope {
    int SelectorVar = -1; ///< SAT selector guarding this scope's clauses.
    size_t AssertionMark; ///< Assertions.size() at push.
    size_t ComplexMark;   ///< NumComplexActive at push.
    uint64_t SavedFingerprint;
  };
  struct Assertion {
    const Term *Formula;
    bool IsConjunction; ///< All conjuncts are literals (mirrored into the
                        ///< theory base).
    std::vector<const Term *> Atoms; ///< Relational atoms of the formula.
  };

  /// Tseitin-encodes \p F (cached across the context's lifetime) and
  /// returns its root literal. Defining clauses are unguarded: they are
  /// equivalences, valid in every scope.
  Lit encodeFormula(const Term *F);
  /// Selector literal of the innermost scope, created on demand; returns
  /// nullopt at depth 0 (permanent assertions need no guard).
  std::optional<Lit> currentSelector();

  CheckResult checkConjunctions(const std::vector<const Term *> &Assumptions);
  CheckResult checkLazy(const std::vector<const Term *> &Assumptions);

  TermManager &TM;
  SatSolver Sat;
  TheoryConjSolver Theory;
  std::vector<Scope> Scopes;
  std::vector<Assertion> Assertions; ///< All live assertions, in order.
  size_t NumComplexActive = 0; ///< Live assertions with boolean structure.
  /// Assertions made at depth 0. Their clauses are permanent units — no
  /// selector tracks them — so unsat cores from the lazy path must
  /// conservatively assume their participation.
  size_t NumPermanentAssertions = 0;
  uint64_t Fingerprint = 0x9e3779b97f4a7c15ull;
  std::map<const Term *, Lit, TermIdLess> NodeLit; ///< Tseitin cache.
  size_t LearnedBudget = 20000;
  ContextStats Stats;
};

/// Evaluates ground literal \p L (a linear relational atom or its
/// negation) under \p M. Returns nullopt when the literal is not a linear
/// literal or mentions an atom the model assigns no value — callers use
/// this to skip entailment queries whose answer the model already
/// witnesses, and must fall back to a real query on nullopt. Theory models
/// are integral and functionally consistent, so a definite answer is a
/// genuine witness over the integers.
std::optional<bool> evalLiteral(const Model &M, const Term *L);

} // namespace smt
} // namespace pathinv

#endif // PATHINV_SMT_SOLVERCONTEXT_H
