//===- smt/SolverContext.cpp - Incremental assumption-based SMT -----------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/SolverContext.h"

#include <algorithm>

using namespace pathinv;
using namespace pathinv::smt;

namespace {

/// Mixes a term id into a running order-sensitive fingerprint.
uint64_t mixFingerprint(uint64_t Fp, uint32_t Id) {
  Fp ^= Id + 0x9e3779b97f4a7c15ull + (Fp << 12) + (Fp >> 4);
  return Fp * 0x100000001b3ull;
}

} // namespace

Lit SolverContext::encodeFormula(const Term *F) {
  auto It = NodeLit.find(F);
  if (It != NodeLit.end())
    return It->second;

  Lit Result;
  switch (F->kind()) {
  case TermKind::True: {
    int Var = Sat.addVar();
    Sat.addClause({Lit(Var, false)});
    Result = Lit(Var, false);
    break;
  }
  case TermKind::False: {
    int Var = Sat.addVar();
    Sat.addClause({Lit(Var, false)});
    Result = Lit(Var, true);
    break;
  }
  case TermKind::Eq:
  case TermKind::Le:
  case TermKind::Lt:
    Result = Lit(Sat.addVar(), false);
    break;
  case TermKind::Not:
    Result = ~encodeFormula(F->operand(0));
    break;
  case TermKind::And:
  case TermKind::Or: {
    bool IsAnd = F->kind() == TermKind::And;
    std::vector<Lit> OpLits;
    OpLits.reserve(F->numOperands());
    for (const Term *Op : F->operands())
      OpLits.push_back(encodeFormula(Op));
    Lit Aux(Sat.addVar(), false);
    // IsAnd:  aux <-> /\ ops;  else aux <-> \/ ops. The defining clauses
    // are equivalences — valid in every scope, so never guarded.
    std::vector<Lit> Long; // (aux -> \/ops) or (/\ops -> aux)
    Long.reserve(OpLits.size() + 1);
    Long.push_back(IsAnd ? Aux : ~Aux);
    for (Lit L : OpLits) {
      Sat.addClause({IsAnd ? ~Aux : Aux, IsAnd ? L : ~L});
      Long.push_back(IsAnd ? ~L : L);
    }
    Sat.addClause(std::move(Long));
    Result = Aux;
    break;
  }
  default:
    assert(false && "unexpected node in propositional skeleton");
    Result = Lit(Sat.addVar(), false);
    break;
  }
  NodeLit.emplace(F, Result);
  return Result;
}

std::optional<Lit> SolverContext::currentSelector() {
  if (Scopes.empty())
    return std::nullopt;
  Scope &S = Scopes.back();
  if (S.SelectorVar < 0)
    S.SelectorVar = Sat.addVar();
  return Lit(S.SelectorVar, false);
}

void SolverContext::push() {
  ++Stats.Pushes;
  Scopes.push_back({-1, Assertions.size(), NumComplexActive, Fingerprint});
  Theory.pushBase();
}

void SolverContext::pop() {
  assert(!Scopes.empty() && "pop without matching push");
  ++Stats.Pops;
  Scope S = Scopes.back();
  Scopes.pop_back();
  if (S.SelectorVar >= 0) {
    // Permanently disable the scope's guarded clauses. Learned clauses
    // mentioning the selector stay valid and become satisfied.
    Sat.addClause({Lit(S.SelectorVar, true)});
  }
  Assertions.resize(S.AssertionMark);
  NumComplexActive = S.ComplexMark;
  Fingerprint = S.SavedFingerprint;
  Theory.popBase();
}

void SolverContext::assertTerm(const Term *F) {
  assert(F->isBool() && "asserting a non-formula");
  assert(!containsQuantifier(F) &&
         "SolverContext is quantifier-free; instantiate quantifiers first");
  assert(!containsStore(F) &&
         "SolverContext is store-free; run array-write elimination on the "
         "whole query first");
  ++Stats.Assertions;
  Fingerprint = mixFingerprint(Fingerprint, F->id());

  Assertion A;
  A.Formula = F;
  std::vector<const Term *> Conjuncts;
  A.IsConjunction = isLiteralConjunction(F, Conjuncts);
  {
    TermSet Atoms;
    collectAtoms(F, Atoms);
    A.Atoms.assign(Atoms.begin(), Atoms.end());
  }

  if (A.IsConjunction) {
    for (const Term *C : Conjuncts)
      Theory.assertBase(C);
  } else {
    ++NumComplexActive;
  }
  if (Scopes.empty())
    ++NumPermanentAssertions;

  // SAT side: guard the root literal with the scope's selector so pop()
  // can retract it; depth-0 assertions are permanent units.
  if (!F->isTrue()) {
    Lit Root = encodeFormula(F);
    if (std::optional<Lit> Sel = currentSelector())
      Sat.addClause({~*Sel, Root});
    else
      Sat.addClause({Root});
  }

  Assertions.push_back(std::move(A));
}

CheckResult
SolverContext::checkSat(const std::vector<const Term *> &Assumptions) {
  ++Stats.Checks;
  bool AllLiteral = NumComplexActive == 0;
  for (const Term *A : Assumptions) {
    if (!A->isLiteral() && !A->isTrue() && !A->isFalse()) {
      AllLiteral = false;
      break;
    }
  }
  CheckResult R = AllLiteral ? checkConjunctions(Assumptions)
                             : checkLazy(Assumptions);
  // Garbage-collect deletable clauses between checks (never mid-loop: the
  // lazy loop relies on its freshly added blocking clause). Purging only
  // removes implied clauses, so every future answer is unchanged — the
  // refutation is just re-derived if it is ever needed again.
  if (LearnedBudget != 0 && Sat.numRedundantClauses() > LearnedBudget) {
    // Count only purges that deleted something (the solver declines to
    // purge when known-unsat, and reason-pinned clauses may fill the
    // whole keep set).
    uint64_t Before = Sat.numPurgedClauses();
    Sat.purgeLearned(LearnedBudget / 2);
    if (Sat.numPurgedClauses() != Before)
      ++Stats.LearnedPurges;
  }
  return R;
}

CheckResult
SolverContext::checkConjunctions(const std::vector<const Term *> &Assumptions) {
  ++Stats.ConjunctionChecks;
  ++Stats.TheoryChecks;
  ConjResult R = Theory.solveWithBase(Assumptions);

  // Persist branch-derived bound lemmas: each says premises -> bound and
  // is theory-valid on its own, so the clause !P1 \/ ... \/ !Pk \/ bound
  // joins the SAT core unguarded — it survives pops, is activity-managed
  // by the learned-clause GC, and prunes future lazy checks that would
  // otherwise rediscover the same integer bound by branching.
  for (const BranchLemma &L : Theory.takeBranchLemmas()) {
    std::vector<Lit> Clause;
    Clause.reserve(L.Premises.size() + 1);
    for (const Term *P : L.Premises) {
      if (P->isTrue())
        continue;
      Clause.push_back(~encodeFormula(P));
    }
    Clause.push_back(encodeFormula(L.Bound));
    if (Sat.addLemma(std::move(Clause)))
      ++Stats.BnbLemmas;
  }

  if (R.Interrupted)
    return CheckResult::unknown(); // Resources exhausted; context reusable.
  if (R.IsSat)
    return CheckResult::sat(Model(std::move(R.Model)));
  std::vector<const Term *> Failed;
  Failed.reserve(R.Core.size());
  for (int I : R.Core)
    Failed.push_back(Assumptions[I]);
  return CheckResult::unsat(
      UnsatCore(std::move(Failed), R.BaseInCore || R.Core.empty()));
}

CheckResult
SolverContext::checkLazy(const std::vector<const Term *> &Assumptions) {
  ++Stats.LazyChecks;
  if (Sat.knownUnsat())
    return CheckResult::unsat(UnsatCore({}, /*FromAssertions=*/true));

  // Assumption vector: live scope selectors first, then the encodings of
  // the caller's assumption formulas.
  std::vector<Lit> SatAssumps;
  std::map<int, const Term *> AssumpOfLit; // Lit.Value -> assumption term.
  for (const Scope &S : Scopes)
    if (S.SelectorVar >= 0)
      SatAssumps.push_back(Lit(S.SelectorVar, false));
  for (const Term *A : Assumptions) {
    if (A->isTrue())
      continue;
    if (A->isFalse())
      return CheckResult::unsat(UnsatCore({A}, /*FromAssertions=*/false));
    assert(!containsQuantifier(A) && !containsStore(A) &&
           "assumptions must be ground and store-free");
    Lit L = encodeFormula(A);
    SatAssumps.push_back(L);
    AssumpOfLit[L.Value] = A;
  }

  // Relevant atoms: only atoms of live assertions and of this check's
  // assumptions join the theory check. Atoms from popped scopes or from
  // other checks sharing this context would otherwise bloat every theory
  // query with stale literals.
  TermSet Active;
  for (const Assertion &A : Assertions)
    Active.insert(A.Atoms.begin(), A.Atoms.end());
  for (const Term *A : Assumptions)
    collectAtoms(A, Active);

  while (true) {
    SatSolver::Result SatR = Sat.solve(SatAssumps);
    if (SatR == SatSolver::Result::Interrupted)
      return CheckResult::unknown(); // SAT core backtracked; reusable.
    if (SatR == SatSolver::Result::Unsat) {
      // Depth-0 assertions live as permanent units with no selector, so
      // their participation cannot be traced; assume it.
      bool FromAssertions =
          Sat.failedAssumptions().empty() || NumPermanentAssertions > 0;
      std::vector<const Term *> Failed;
      for (Lit L : Sat.failedAssumptions()) {
        auto It = AssumpOfLit.find(L.Value);
        if (It != AssumpOfLit.end())
          Failed.push_back(It->second);
        else
          FromAssertions = true; // A scope selector: asserted state.
      }
      std::sort(Failed.begin(), Failed.end(), TermIdLess());
      Failed.erase(std::unique(Failed.begin(), Failed.end()), Failed.end());
      return CheckResult::unsat(
          UnsatCore(std::move(Failed), FromAssertions || Failed.empty()));
    }

    // Theory-validate the propositional model over the relevant atoms.
    std::vector<const Term *> TheoryLits;
    std::vector<Lit> SatLits;
    TheoryLits.reserve(Active.size());
    SatLits.reserve(Active.size());
    for (const Term *Atom : Active) {
      auto It = NodeLit.find(Atom);
      assert(It != NodeLit.end() && "active atom was never encoded");
      int Var = It->second.var();
      bool Positive = Sat.modelValue(Var) != It->second.negated();
      TheoryLits.push_back(Positive ? Atom : TM.mkNot(Atom));
      SatLits.push_back(Lit(Var, !Positive));
    }
    ++Stats.TheoryChecks;
    ConjResult R = Theory.solve(TheoryLits);
    if (R.Interrupted)
      return CheckResult::unknown();
    if (R.IsSat)
      return CheckResult::sat(Model(std::move(R.Model)));

    // Block this theory-inconsistent assignment (negate the core). The
    // lemma is theory-valid, so it is never guarded: it survives pops and
    // serves every future check.
    std::vector<Lit> Blocking;
    Blocking.reserve(R.Core.size());
    for (int LitIdx : R.Core)
      Blocking.push_back(~SatLits[LitIdx]);
    if (Blocking.empty() || !Sat.addLemma(std::move(Blocking)))
      return CheckResult::unsat(UnsatCore({}, /*FromAssertions=*/true));
  }
}

ContextStats SolverContext::stats() const {
  ContextStats S = Stats;
  S.SatConflicts = Sat.numConflicts();
  S.SatDecisions = Sat.numDecisions();
  S.SatPropagations = Sat.numPropagations();
  S.BaseReuses = Theory.numBaseReuses();
  S.BaseRebuilds = Theory.numBaseRebuilds();
  S.BnbNodes = Theory.numBnbNodes();
  S.BnbRepairPivots = Theory.numBnbRepairPivots();
  S.ScratchFallbacks = Theory.numScratchFallbacks();
  S.CutRows = Theory.numCutRows();
  S.ClausesPurged = Sat.numPurgedClauses();
  S.RedundantClauses = Sat.numRedundantClauses();
  return S;
}

std::optional<bool> smt::evalLiteral(const Model &M, const Term *L) {
  bool Negated = L->kind() == TermKind::Not;
  const Term *Atom = Negated ? L->operand(0) : L;
  std::optional<LinearAtom> Lin = decomposeAtom(Atom);
  if (!Lin)
    return std::nullopt;
  Rational Value = Lin->Expr.constant();
  for (const auto &[A, Coeff] : Lin->Expr.coefficients()) {
    std::optional<Rational> V = M.value(A);
    if (!V)
      return std::nullopt; // The model says nothing about this atom.
    Value.addMul(Coeff, *V);
  }
  bool Holds = false;
  switch (Lin->Rel) {
  case RelKind::Eq:
    Holds = Value.isZero();
    break;
  case RelKind::Le:
    Holds = !Value.isPositive();
    break;
  case RelKind::Lt:
    Holds = Value.isNegative();
    break;
  }
  return Negated ? !Holds : Holds;
}
