//===- smt/TheoryConj.h - Conjunction solver for LRA+EUF -------*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Decision procedure for conjunctions of literals over linear arithmetic
/// combined with uninterpreted functions and array reads.
///
/// Path formulas (Section 2.1) and the entailment queries of cartesian
/// predicate abstraction are conjunctions, so this solver is the workhorse
/// of both counterexample analysis and abstract post computation. The
/// combination is
///   * exact simplex for the arithmetic skeleton (atoms = opaque terms),
///   * congruence closure for functional consistency of reads/applications,
///   * equality exchange CC -> simplex for merged classes, and
///   * model-based splitting (three-way: <, >, = with congruence) when a
///     candidate arithmetic model violates functional consistency —
///     giving a complete procedure for the convex combination.
///
/// Unsat cores are reported as indices into the input literal vector.
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_SMT_THEORYCONJ_H
#define PATHINV_SMT_THEORYCONJ_H

#include "logic/LinearExpr.h"
#include "logic/TermRewrite.h"

#include <map>
#include <vector>

namespace pathinv {

/// Result of a conjunction query.
struct ConjResult {
  bool IsSat = false;
  /// On SAT: values for every arithmetic atom (variables, reads, applies).
  std::map<const Term *, Rational, TermIdLess> Model;
  /// On UNSAT: indices of an inconsistent subset of the input literals.
  std::vector<int> Core;
};

/// Conjunction-of-literals solver over LRA + EUF + array reads.
///
/// Input literals must be store-free (run eliminateArrayWrites first) and
/// quantifier-free; integer disequalities are accepted and handled by
/// internal splitting.
class TheoryConjSolver {
public:
  explicit TheoryConjSolver(TermManager &TM) : TM(TM) {}

  /// Decides the conjunction of \p Literals. Each literal is a relational
  /// atom, a negated equality, or a boolean constant.
  ConjResult solve(const std::vector<const Term *> &Literals);

  /// Statistics: simplex instances created during the last solve().
  unsigned numSimplexRuns() const { return SimplexRuns; }

private:
  /// A constraint with provenance: Origin >= 0 is an input literal index,
  /// Origin == -1 marks an internal split decision.
  struct Fact {
    const Term *Literal;
    int Origin;
  };

  /// Recursive search over theory splits. Returned cores refer to fact
  /// indices; decisions introduced at each split are removed before the
  /// core propagates upward.
  ConjResult solveFacts(std::vector<Fact> Facts, int Depth);

  TermManager &TM;
  unsigned SimplexRuns = 0;
};

} // namespace pathinv

#endif // PATHINV_SMT_THEORYCONJ_H
