//===- smt/TheoryConj.h - Conjunction solver for LRA+EUF -------*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Decision procedure for conjunctions of literals over linear arithmetic
/// combined with uninterpreted functions and array reads.
///
/// Path formulas (Section 2.1) and the entailment queries of cartesian
/// predicate abstraction are conjunctions, so this solver is the workhorse
/// of both counterexample analysis and abstract post computation. The
/// combination is
///   * exact simplex for the arithmetic skeleton (atoms = opaque terms),
///   * congruence closure for functional consistency of reads/applications,
///   * equality exchange CC -> simplex for merged classes, and
///   * model-based splitting (three-way: <, >, = with congruence) when a
///     candidate arithmetic model violates functional consistency —
///     giving a complete procedure for the convex combination.
///
/// Unsat cores are reported as indices into the input literal vector.
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_SMT_THEORYCONJ_H
#define PATHINV_SMT_THEORYCONJ_H

#include "logic/LinearExpr.h"
#include "logic/TermRewrite.h"
#include "smt/Simplex.h"

#include <map>
#include <utility>
#include <vector>

namespace pathinv {

/// Result of a conjunction query.
struct ConjResult {
  bool IsSat = false;
  /// On SAT: values for every arithmetic atom (variables, reads, applies).
  std::map<const Term *, Rational, TermIdLess> Model;
  /// On UNSAT: indices of an inconsistent subset of the input literals.
  /// For solveWithBase() the indices refer to the query vector only.
  std::vector<int> Core;
  /// Set only by solveWithBase(): retained base literals participate in
  /// the inconsistency (an empty Core with BaseInCore set means the base
  /// alone is unsatisfiable).
  bool BaseInCore = false;
  /// The job's ResourceController tripped mid-solve: IsSat/Model/Core are
  /// meaningless, but the solver (scopes, tableau, atom maps) is back in a
  /// valid, reusable state. Never a verdict.
  bool Interrupted = false;
};

/// A bound lemma derived by the scoped branch-and-bound: the conjunction
/// of \c Premises (input literals of the base/query) entails \c Bound, an
/// integer bound literal derived from a refuted branch. The implication is
/// theory-valid on its own — the clause !P1 \/ ... \/ !Pk \/ Bound may be
/// learned permanently (SolverContext plumbs these through
/// SatSolver::addLemma so learned integer bounds persist across queries).
struct BranchLemma {
  std::vector<const Term *> Premises;
  const Term *Bound;
};

/// Conjunction-of-literals solver over LRA + EUF + array reads.
///
/// Input literals must be store-free (run eliminateArrayWrites first) and
/// quantifier-free; integer disequalities are accepted and handled by
/// internal splitting.
///
/// Besides the one-shot solve(), the solver retains a scoped *base* of
/// asserted literals (pushBase/popBase/assertBase). solveWithBase() decides
/// base AND query conjunctions against a cached simplex tableau of the
/// base — queries run inside a tableau scope that is popped afterwards —
/// so the arithmetic of a long asserted prefix is encoded and solved once
/// per base change instead of once per query.
///
/// Queries whose rational relaxation needs integrality or disequality
/// case splits stay on the cached tableau too: a scoped branch-and-bound
/// pushes one bound scope per branch node (`x <= floor(v)` / `x >= ceil(v)`
/// for a fractional value, the `<=`/`>=` tightenings for a violated
/// disequality), lets check() dual-repair the assignment, and backtracks
/// by popping the scope — never rebuilding the tableau or re-asserting the
/// conjunction. The branching variable is chosen best-first by
/// fractionality (value closest to 1/2) and the side nearer the relaxation
/// value is explored first. The search is budgeted (setBnbBudgets); on
/// exhaustion — or when a functional-consistency split is needed, which
/// would have to re-run congruence closure — it falls back soundly to the
/// from-scratch combined solve (counted by numScratchFallbacks()).
class TheoryConjSolver {
public:
  explicit TheoryConjSolver(TermManager &TM) : TM(TM) {}

  /// Decides the conjunction of \p Literals. Each literal is a relational
  /// atom, a negated equality, or a boolean constant.
  ConjResult solve(const std::vector<const Term *> &Literals);

  /// \name Retained assertions (the incremental base)
  /// @{
  void pushBase() { BaseMarks.push_back(BaseLits.size()); }
  void popBase() {
    assert(!BaseMarks.empty() && "popBase without matching pushBase");
    if (BaseLits.size() != BaseMarks.back())
      BaseDirty = true;
    BaseLits.resize(BaseMarks.back());
    BaseMarks.pop_back();
  }
  void assertBase(const Term *Literal) {
    if (Literal->isTrue())
      return;
    BaseLits.push_back(Literal);
    BaseDirty = true;
  }
  size_t numBaseLiterals() const { return BaseLits.size(); }
  size_t numBaseScopes() const { return BaseMarks.size(); }

  /// Decides base AND \p Query. Unsat cores index into \p Query;
  /// ConjResult::BaseInCore marks participation of retained literals.
  ConjResult solveWithBase(const std::vector<const Term *> &Query);
  /// @}

  /// \name Scoped branch-and-bound tuning and introspection
  /// @{
  /// Budgets for the scoped search: at most \p MaxNodes branch nodes per
  /// query and branch stacks at most \p MaxDepth deep. Exhaustion falls
  /// back to the from-scratch solve (always sound, just slower). A zero
  /// node budget disables the scoped search entirely — every
  /// split-requiring query takes the scratch path, which is exactly the
  /// pre-branch-and-bound behavior (used by the bench harness as its
  /// in-process reference, and by tests pinning the fallback).
  void setBnbBudgets(uint32_t MaxNodes, uint32_t MaxDepth) {
    BnbNodeBudget = MaxNodes;
    BnbDepthBudget = MaxDepth;
  }
  /// Bound lemmas derived since the last call (drained; see BranchLemma).
  /// Capped so an undrained solver stays bounded.
  std::vector<BranchLemma> takeBranchLemmas() {
    return std::exchange(PendingLemmas, {});
  }
  /// @}

  /// Statistics (cumulative): simplex systems solved, queries served from
  /// the cached base tableau, cache rebuilds, branch-and-bound work, and
  /// scratch fallbacks. 64-bit: long-lived contexts can push query counts
  /// past 2^31.
  uint64_t numSimplexRuns() const { return SimplexRuns; }
  uint64_t numBaseReuses() const { return BaseReuses; }
  uint64_t numBaseRebuilds() const { return BaseRebuilds; }
  /// Branch nodes explored by the scoped search.
  uint64_t numBnbNodes() const { return BnbNodes; }
  /// Tableau pivots spent repairing assignments after branch bounds.
  uint64_t numBnbRepairPivots() const { return BnbRepairPivots; }
  /// solveWithBase() queries that abandoned the cached tableau for a
  /// from-scratch solve (budget exhaustion or functional splits).
  uint64_t numScratchFallbacks() const { return ScratchFallbacks; }
  /// Branch lemmas produced (whether or not they were drained).
  uint64_t numBranchLemmas() const { return BranchLemmasProduced; }
  /// Cut-row installs onto the cached base tableau (re-installs after a
  /// base rebuild count again — this measures rows the tableau carried).
  uint64_t numCutRows() const { return CutRowsInstalled; }

private:
  /// A constraint with provenance: Origin >= 0 is an input literal index,
  /// Origin == -1 marks an internal split decision.
  struct Fact {
    const Term *Literal;
    int Origin;
  };

  /// Recursive search over theory splits. Returned cores refer to fact
  /// indices; decisions introduced at each split are removed before the
  /// core propagates upward.
  ConjResult solveFacts(std::vector<Fact> Facts, int Depth);

  /// Fast path over the cached base tableau, including the scoped
  /// branch-and-bound for integrality/disequality splits. Returns false
  /// only when the scoped search cannot complete the query (budget
  /// exhaustion or a functional-consistency split); the caller then falls
  /// back to a from-scratch combined solve.
  bool trySolveScoped(const std::vector<const Term *> &Query,
                      ConjResult &Out);

  /// Rebuilds the cached base tableau when stale (or when dead columns
  /// from popped query scopes dominate). Returns false when the base is
  /// arithmetically unsatisfiable on its own.
  bool ensureBaseTableau();

  /// A distilled cut: an integer bound the scoped search derived from
  /// base literals alone, at least twice. While its premises stay
  /// asserted, the bound is base-entailed, so it can sit as a permanent
  /// row of the cached tableau (tagged \c CutTag) — branch refutations
  /// that used to take a push/check/pop cycle per query become immediate
  /// root conflicts. A base rebuild drops the rows; they are re-installed
  /// only if every premise is still in BaseLits.
  struct CutRow {
    std::vector<const Term *> Premises;
    const Term *Bound;
    bool Installed = false;
  };
  /// Tag for cut rows. Negative so it can never collide with a fact
  /// index or derived tag; core expansion maps it to BaseInCore (the row
  /// is base-entailed), and lemma surfacing skips any core containing one
  /// (a cut carries no premise set of its own — learning through it would
  /// produce an unsoundly weak clause).
  static constexpr int CutTag = -2;
  static constexpr size_t MaxCutRows = 64;
  static constexpr size_t MaxCutCandidates = 1024;

  /// Installs pending cut rows whose premises are currently asserted.
  /// Called with the base tableau valid and no query scope open.
  void installCutRows();
  /// Counts freshly surfaced base-only lemmas and promotes bounds seen
  /// >= 2 times into CutRows.
  void distillCuts(std::vector<BranchLemma> &BaseOnly);

  TermManager &TM;
  uint64_t SimplexRuns = 0;

  std::vector<const Term *> BaseLits;
  std::vector<size_t> BaseMarks;
  bool BaseDirty = false;
  bool BaseUnsat = false;
  Simplex BaseSplx;
  std::map<const Term *, int, TermIdLess> BaseAtomVar;
  int BaseVarCount = 0;
  uint64_t BaseReuses = 0;
  uint64_t BaseRebuilds = 0;

  uint32_t BnbNodeBudget = 4096;
  uint32_t BnbDepthBudget = 64;
  uint64_t BnbNodes = 0;
  uint64_t BnbRepairPivots = 0;
  uint64_t ScratchFallbacks = 0;
  uint64_t BranchLemmasProduced = 0;
  std::vector<BranchLemma> PendingLemmas;

  std::vector<CutRow> CutRows;
  /// Times each bound term was surfaced as a base-only lemma head (the
  /// promotion threshold); bounded by MaxCutCandidates.
  std::map<const Term *, int, TermIdLess> CutSurfaceCount;
  uint64_t CutRowsInstalled = 0;
};

} // namespace pathinv

#endif // PATHINV_SMT_THEORYCONJ_H
