//===- smt/ArrayElim.h - Array write elimination ---------------*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reduction of array writes to read-over-write case splits.
///
/// Section 4.2 ("Primed Program Variables and Array Symbols") eliminates an
/// update a' = a{i := 0} by case distinction: a read a'[k] equals the
/// written value when k = i and the old content a[k] otherwise. This pass
/// applies the same reduction to ground formulas: every top-level conjunct
/// of the form  b = store(a, i, v)  is dropped and replaced by instantiated
/// read-over-write axioms for every read of b occurring in the formula.
/// Afterwards all arrays are plain variables and reads behave as
/// uninterpreted function applications (handled by congruence closure).
///
/// Precondition: stores occur only positively, as top-level conjuncts
/// `arrayVar = store(arrayTerm, idx, val)` — exactly the shape produced by
/// SSA path formulas and transition constraints. Array-to-array identities
/// `b = a` are resolved by substitution.
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_SMT_ARRAYELIM_H
#define PATHINV_SMT_ARRAYELIM_H

#include "logic/Term.h"
#include "support/Diagnostics.h"

namespace pathinv {

/// Eliminates array stores and array equalities from \p Formula.
/// Returns the store-free equisatisfiable formula, or an error when the
/// formula violates the positive-top-level-store precondition.
Expected<const Term *> eliminateArrayWrites(TermManager &TM,
                                            const Term *Formula);

} // namespace pathinv

#endif // PATHINV_SMT_ARRAYELIM_H
