//===- smt/Congruence.h - Congruence closure for EUF ----------*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Congruence closure over uninterpreted functions and array reads.
///
/// Array read terms a[i] are treated as applications of a per-array
/// function symbol (the "functionality axiom" of Section 4.2: reads from
/// the same array at equal positions yield equal values). This is exactly
/// the reduction the paper performs after eliminating array writes.
///
/// The solver maintains a union-find over registered terms, congruence
/// propagation for Select/Apply nodes, and disequality constraints;
/// explanations are tracked per merge so unsat cores stay small.
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_SMT_CONGRUENCE_H
#define PATHINV_SMT_CONGRUENCE_H

#include "logic/Term.h"

#include <map>
#include <set>
#include <vector>

namespace pathinv {

/// Congruence-closure engine. Terms are registered lazily; equalities and
/// disequalities carry integer tags used in conflict explanations.
class CongruenceClosure {
public:
  /// Registers \p T and its subterms (Select/Apply arguments) as nodes.
  void registerTerm(const Term *T);

  /// Asserts T1 = T2 (registering both). Returns false on conflict.
  bool assertEqual(const Term *T1, const Term *T2, int Tag);

  /// Asserts T1 != T2 (registering both). Returns false on conflict.
  bool assertDisequal(const Term *T1, const Term *T2, int Tag);

  /// \returns true if the two terms are currently known equal.
  bool areEqual(const Term *T1, const Term *T2);

  /// \returns true when a conflict has been detected.
  bool inConflict() const { return Conflict; }

  /// Tags explaining the conflict (equality chain + the disequality).
  const std::vector<int> &conflictTags() const {
    assert(Conflict && "conflictTags() without conflict");
    return ConflictCore;
  }

  /// All currently registered terms, in deterministic order.
  const std::vector<const Term *> &nodes() const { return Nodes; }

  /// Representative of the equivalence class of \p T.
  const Term *representative(const Term *T);

  /// Collects equations `A = B` implied by congruence between registered
  /// terms, as pairs of class representatives (excluding trivial ones).
  std::vector<std::pair<const Term *, const Term *>> equivalentPairs();

  /// Tags of the merges explaining why T1 and T2 are equal (requires
  /// areEqual(T1, T2)).
  std::vector<int> explainEquality(const Term *T1, const Term *T2);

private:
  struct NodeInfo {
    const Term *Parent = nullptr; ///< Union-find parent (self if root).
    // Proof forest for explanations: edge to ProofParent justified by
    // ProofTag (or by congruence when ProofTag == CongruenceTag, in which
    // case the premise argument equalities are replayed recursively).
    const Term *ProofParent = nullptr;
    int ProofTag = -1;
    const Term *CongrLhs = nullptr; ///< For congruence edges: merged apps.
    const Term *CongrRhs = nullptr;
    std::vector<const Term *> Uses; ///< Apply/Select terms using this node.
  };

  static constexpr int CongruenceTag = -2;

  bool known(const Term *T) const { return Info.count(T) != 0; }
  const Term *find(const Term *T);
  /// Merges the classes of T1 and T2 with proof edge (Tag or congruence
  /// premise Lhs/Rhs); propagates congruences. Returns false on conflict.
  bool merge(const Term *T1, const Term *T2, int Tag, const Term *CongrLhs,
             const Term *CongrRhs);
  /// Signature of an application under current representatives.
  std::vector<const Term *> signature(const Term *App);
  void explainAlongPath(const Term *From, const Term *To,
                        std::set<int> &Tags);
  const Term *nearestCommonAncestor(const Term *T1, const Term *T2);

  std::map<const Term *, NodeInfo, TermIdLess> Info;
  std::vector<const Term *> Nodes;
  /// Asserted disequalities (T1, T2, tag).
  std::vector<std::tuple<const Term *, const Term *, int>> Disequalities;
  bool Conflict = false;
  std::vector<int> ConflictCore;
};

} // namespace pathinv

#endif // PATHINV_SMT_CONGRUENCE_H
