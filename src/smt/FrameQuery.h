//===- smt/FrameQuery.h - Assumption-batch frame queries --------*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The query shape PDR drives the incremental solver with: decide
/// Base ∧ assumption-literals, where Base changes per query (a frame's
/// clauses conjoined with one transition relation) but the queries share
/// encodings, learned clauses, and the cached tableau through one
/// long-lived SolverContext. Each query is a push/assert/checkSat/pop
/// cycle; on Unsat the failed-assumption core names the cube literals
/// that were actually needed — the raw material of PDR generalization.
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_SMT_FRAMEQUERY_H
#define PATHINV_SMT_FRAMEQUERY_H

#include "smt/SolverContext.h"

namespace pathinv {
namespace smt {

/// One persistent context serving all of an engine's frame queries.
/// Scoped asserts keep the context clean between queries while the
/// solver's learned state accumulates across them.
class FrameQueryContext {
public:
  explicit FrameQueryContext(TermManager &TM) : Ctx(TM) {}

  /// Decides \p Base ∧ \p Assumptions (all quantifier-free and
  /// store-free). \p Base is asserted in a throwaway scope; on Unsat the
  /// result's core names the failed assumptions. Unknown means the
  /// active ResourceController tripped mid-check; the context stays
  /// reusable.
  CheckResult query(const Term *Base,
                    const std::vector<const Term *> &Assumptions);

  /// Same, with the base given as a conjunct list (avoids building one
  /// big conjunction term per query).
  CheckResult query(const std::vector<const Term *> &Base,
                    const std::vector<const Term *> &Assumptions);

  SolverContext &context() { return Ctx; }
  uint64_t queries() const { return Queries; }

private:
  SolverContext Ctx;
  uint64_t Queries = 0;
};

} // namespace smt
} // namespace pathinv

#endif // PATHINV_SMT_FRAMEQUERY_H
