//===- smt/ArrayElim.cpp - Array write elimination ------------------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/ArrayElim.h"

#include "logic/TermRewrite.h"

#include <set>

using namespace pathinv;

namespace {

/// One array-update definition b = store(Base, Index, Value).
struct StoreDef {
  const Term *Defined; ///< The defined array variable b.
  const Term *Base;    ///< The source array (variable after resolution).
  const Term *Index;
  const Term *Value;
};

} // namespace

namespace {

/// Finds a ground read-over-write Select(Store(b, i, v), j) node.
const Term *findNestedSelect(const Term *T) {
  if (T->kind() == TermKind::Select &&
      T->operand(0)->kind() == TermKind::Store)
    return T;
  for (const Term *Op : T->operands())
    if (const Term *Found = findNestedSelect(Op))
      return Found;
  return nullptr;
}

/// Ackermann-style elimination of reads over writes occurring anywhere in
/// the formula (e.g. inside predicates produced by weakest-precondition
/// propagation): each distinct Select(Store(b, i, v), j) is replaced by a
/// fresh variable w defined by the read-over-write axiom
///   (j = i -> w = v) /\ (j != i -> w = b[j]).
/// The definition is polarity-neutral, so the replacement is sound in any
/// position. Fresh names derive from the term's unique id, keeping
/// identical queries identical (and the SMT cache warm).
const Term *defineNestedSelects(TermManager &TM, const Term *Formula) {
  while (const Term *Read = findNestedSelect(Formula)) {
    const Term *Store = Read->operand(0);
    const Term *J = Read->operand(1);
    const Term *B = Store->operand(0);
    const Term *I = Store->operand(1);
    const Term *V = Store->operand(2);
    const Term *W =
        TM.mkVar("rw!" + std::to_string(Read->id()), Sort::Int);
    TermMap Subst;
    Subst[Read] = W;
    const Term *Replaced = substitute(TM, Formula, Subst);
    const Term *Hit = TM.mkImplies(TM.mkEq(J, I), TM.mkEq(W, V));
    const Term *Miss =
        TM.mkImplies(TM.mkNe(J, I), TM.mkEq(W, TM.mkSelect(B, J)));
    Formula = TM.mkAnd({Replaced, Hit, Miss});
  }
  return Formula;
}

} // namespace

Expected<const Term *> pathinv::eliminateArrayWrites(TermManager &TM,
                                                     const Term *Formula) {
  // Resolve array-to-array aliases b = a FIRST (union-find, earliest
  // instance as representative), so every read and every store sees one
  // representative per array class. Resolving after the store pass is too
  // late: a read through an alias of a written array (the SSA frame chains
  // produce exactly this) would never meet its read-over-write axiom and
  // the write would silently disappear from the query.
  {
    std::vector<const Term *> Conjuncts;
    flattenConjuncts(Formula, Conjuncts);
    std::map<const Term *, const Term *, TermIdLess> Parent;
    std::function<const Term *(const Term *)> Find =
        [&](const Term *V) -> const Term * {
      auto It = Parent.find(V);
      if (It == Parent.end() || It->second == V)
        return V;
      const Term *Root = Find(It->second);
      It->second = Root;
      return Root;
    };
    for (const Term *C : Conjuncts) {
      if (C->kind() == TermKind::Eq && C->operand(0)->isArray() &&
          C->operand(0)->isVar() && C->operand(1)->isVar()) {
        const Term *RA = Find(C->operand(0));
        const Term *RB = Find(C->operand(1));
        if (RA == RB)
          continue;
        if (RA->id() > RB->id())
          std::swap(RA, RB);
        Parent[RB] = RA;
      }
    }
    if (!Parent.empty()) {
      TermMap Alias;
      for (const auto &[V, Par] : Parent) {
        const Term *Root = Find(V);
        if (Root != V)
          Alias[V] = Root;
      }
      Formula = substitute(TM, Formula, Alias);
    }
  }

  Formula = defineNestedSelects(TM, Formula);
  if (!containsStore(Formula))
    return Formula;

  std::vector<const Term *> Conjuncts;
  flattenConjuncts(Formula, Conjuncts);

  std::vector<StoreDef> Defs;
  std::vector<const Term *> Rest;
  for (const Term *C : Conjuncts) {
    // Recognize   b = store(base, i, v)   in either orientation.
    const Term *Lhs = nullptr, *Store = nullptr;
    if (C->kind() == TermKind::Eq) {
      if (C->operand(0)->isVar() && C->operand(0)->isArray() &&
          C->operand(1)->kind() == TermKind::Store) {
        Lhs = C->operand(0);
        Store = C->operand(1);
      } else if (C->operand(1)->isVar() && C->operand(1)->isArray() &&
                 C->operand(0)->kind() == TermKind::Store) {
        Lhs = C->operand(1);
        Store = C->operand(0);
      }
    }
    if (Store) {
      if (containsStore(Store->operand(0)) ||
          containsStore(Store->operand(1)) ||
          containsStore(Store->operand(2)))
        return Expected<const Term *>::makeError(
            "nested array stores are not supported");
      if (!Store->operand(0)->isVar())
        return Expected<const Term *>::makeError(
            "store base must be an array variable");
      Defs.push_back(
          {Lhs, Store->operand(0), Store->operand(1), Store->operand(2)});
      continue;
    }
    if (containsStore(C))
      return Expected<const Term *>::makeError(
          "array store in unsupported position (must be a top-level "
          "conjunct 'b = store(a, i, v)')");
    Rest.push_back(C);
  }

  // Defined arrays must be distinct (SSA form guarantees this).
  std::set<const Term *, TermIdLess> Defined;
  for (const StoreDef &D : Defs) {
    if (!Defined.insert(D.Defined).second)
      return Expected<const Term *>::makeError(
          "array variable defined by two stores (input must be in SSA "
          "form)");
    if (D.Defined == D.Base)
      return Expected<const Term *>::makeError(
          "cyclic array store definition");
  }

  // Worklist over reads: instantiate read-over-write for every read of a
  // defined array; reads of the base array introduced by the axioms are
  // processed in turn (store chains terminate because SSA definitions are
  // acyclic).
  const Term *Body = TM.mkAnd(Rest);
  TermSet Reads;
  collectSelects(Body, Reads);
  for (const StoreDef &D : Defs) {
    TermSet Sub;
    collectSelects(D.Index, Sub);
    collectSelects(D.Value, Sub);
    Reads.insert(Sub.begin(), Sub.end());
  }

  std::vector<const Term *> Axioms;
  std::set<const Term *, TermIdLess> Processed;
  std::vector<const Term *> Worklist(Reads.begin(), Reads.end());
  while (!Worklist.empty()) {
    const Term *Read = Worklist.back();
    Worklist.pop_back();
    if (!Processed.insert(Read).second)
      continue;
    const Term *Array = Read->operand(0);
    const Term *Idx = Read->operand(1);
    for (const StoreDef &D : Defs) {
      if (Array != D.Defined)
        continue;
      const Term *BaseRead = TM.mkSelect(D.Base, Idx);
      // (idx = i -> b[idx] = v) && (idx != i -> b[idx] = base[idx])
      Axioms.push_back(
          TM.mkImplies(TM.mkEq(Idx, D.Index), TM.mkEq(Read, D.Value)));
      Axioms.push_back(TM.mkImplies(TM.mkNe(Idx, D.Index),
                                    TM.mkEq(Read, BaseRead)));
      Worklist.push_back(BaseRead);
      break; // At most one definition per array.
    }
  }

  std::vector<const Term *> All;
  All.push_back(Body);
  All.insert(All.end(), Axioms.begin(), Axioms.end());
  const Term *Result = TM.mkAnd(std::move(All));
  // The defined arrays are now observed only through their reads (plain
  // UF applications); the store conjuncts themselves are dropped.
  // Resolve any remaining array aliases.
  return eliminateArrayWrites(TM, Result);
}
