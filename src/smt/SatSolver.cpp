//===- smt/SatSolver.cpp - CDCL propositional solver ----------------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/SatSolver.h"

#include <algorithm>

using namespace pathinv;

int SatSolver::addVar() {
  int Var = static_cast<int>(Assign.size());
  Assign.push_back(Unassigned);
  Level.push_back(-1);
  Reason.push_back(-1);
  Activity.push_back(0.0);
  Watches.emplace_back(); // positive literal
  Watches.emplace_back(); // negative literal
  return Var;
}

bool SatSolver::addClause(std::vector<Lit> Clause) {
  if (KnownUnsat)
    return false;
  // Remove duplicates; detect tautologies.
  std::sort(Clause.begin(), Clause.end(),
            [](Lit A, Lit B) { return A.Value < B.Value; });
  Clause.erase(std::unique(Clause.begin(), Clause.end()), Clause.end());
  for (size_t I = 0; I + 1 < Clause.size(); ++I)
    if (Clause[I].var() == Clause[I + 1].var())
      return true; // Tautology: p || !p.

  // Solving is restartable: clauses may arrive between solve() calls (the
  // lazy SMT loop adds blocking clauses). Reset to level 0 first.
  backtrack(0);

  // Drop literals already false at level 0; a literal true at level 0
  // satisfies the clause permanently.
  std::vector<Lit> Pruned;
  for (Lit L : Clause) {
    if (litTrue(L))
      return true;
    if (!litFalse(L))
      Pruned.push_back(L);
  }
  if (Pruned.empty()) {
    KnownUnsat = true;
    return false;
  }
  if (Pruned.size() == 1) {
    enqueue(Pruned[0], -1);
    if (propagate() >= 0) {
      KnownUnsat = true;
      return false;
    }
    return true;
  }

  int Idx = static_cast<int>(Clauses.size());
  Watches[Pruned[0].Value].push_back(Idx);
  Watches[Pruned[1].Value].push_back(Idx);
  Clauses.push_back({std::move(Pruned), false});
  return true;
}

void SatSolver::enqueue(Lit L, int ReasonClause) {
  assert(litUnassigned(L) && "enqueueing an assigned literal");
  Assign[L.var()] = L.negated() ? FalseVal : TrueVal;
  Level[L.var()] = static_cast<int>(TrailLim.size());
  Reason[L.var()] = ReasonClause;
  Trail.push_back(L);
}

int SatSolver::propagate() {
  while (PropHead < Trail.size()) {
    Lit L = Trail[PropHead++];
    ++Propagations;
    // Clauses watching ~L must be inspected.
    std::vector<int> &WatchList = Watches[(~L).Value];
    std::vector<int> Kept;
    Kept.reserve(WatchList.size());
    for (size_t WI = 0; WI < WatchList.size(); ++WI) {
      int CI = WatchList[WI];
      Clause &C = Clauses[CI];
      // Normalize: watched literal ~L at position 1.
      if (C.Lits[0] == ~L)
        std::swap(C.Lits[0], C.Lits[1]);
      assert(C.Lits[1] == ~L && "watch list out of sync");
      if (litTrue(C.Lits[0])) {
        Kept.push_back(CI);
        continue;
      }
      // Find a replacement watch.
      bool Found = false;
      for (size_t K = 2; K < C.Lits.size(); ++K) {
        if (!litFalse(C.Lits[K])) {
          std::swap(C.Lits[1], C.Lits[K]);
          Watches[C.Lits[1].Value].push_back(CI);
          Found = true;
          break;
        }
      }
      if (Found)
        continue;
      // Unit or conflicting.
      Kept.push_back(CI);
      if (litFalse(C.Lits[0])) {
        // Conflict: restore remaining watches and report.
        for (size_t K = WI + 1; K < WatchList.size(); ++K)
          Kept.push_back(WatchList[K]);
        WatchList = std::move(Kept);
        return CI;
      }
      enqueue(C.Lits[0], CI);
    }
    WatchList = std::move(Kept);
  }
  return -1;
}

void SatSolver::bumpVar(int Var) {
  Activity[Var] += ActivityInc;
  if (Activity[Var] > 1e100) {
    for (double &A : Activity)
      A *= 1e-100;
    ActivityInc *= 1e-100;
  }
}

void SatSolver::decayActivities() { ActivityInc *= 1.05; }

int SatSolver::analyze(int ConflictClause, std::vector<Lit> &Learned) {
  Learned.clear();
  Learned.push_back(Lit()); // Slot for the asserting (UIP) literal.
  int CurrentLevel = static_cast<int>(TrailLim.size());
  std::vector<bool> Seen(Assign.size(), false);
  int Counter = 0;
  Lit P;
  bool HaveP = false;
  size_t TrailIdx = Trail.size();
  int ClauseIdx = ConflictClause;

  do {
    assert(ClauseIdx >= 0 && "conflict analysis lost its reason");
    const Clause &C = Clauses[ClauseIdx];
    // When following a reason clause, Lits[0] is the propagated literal P
    // (propagation and learning both place it there, and it cannot be
    // swapped away while the clause serves as a reason).
    assert((!HaveP || C.Lits[0] == P) && "reason clause out of order");
    for (size_t I = HaveP ? 1 : 0; I < C.Lits.size(); ++I) {
      Lit Q = C.Lits[I];
      int Var = Q.var();
      if (Seen[Var] || Level[Var] == 0)
        continue;
      Seen[Var] = true;
      bumpVar(Var);
      if (Level[Var] == CurrentLevel)
        ++Counter;
      else
        Learned.push_back(Q);
    }
    // Pick the next trail literal to resolve on.
    while (!Seen[Trail[TrailIdx - 1].var()])
      --TrailIdx;
    --TrailIdx;
    P = Trail[TrailIdx];
    HaveP = true;
    Seen[P.var()] = false;
    ClauseIdx = Reason[P.var()];
    --Counter;
  } while (Counter > 0);

  Learned[0] = ~P;

  // Backjump level: highest level among the other literals.
  int BackLevel = 0;
  size_t MaxIdx = 1;
  for (size_t I = 1; I < Learned.size(); ++I) {
    if (Level[Learned[I].var()] > BackLevel) {
      BackLevel = Level[Learned[I].var()];
      MaxIdx = I;
    }
  }
  if (Learned.size() > 1)
    std::swap(Learned[1], Learned[MaxIdx]);
  return BackLevel;
}

void SatSolver::backtrack(int TargetLevel) {
  if (static_cast<int>(TrailLim.size()) <= TargetLevel)
    return;
  size_t Bound = TrailLim[TargetLevel];
  while (Trail.size() > Bound) {
    Lit L = Trail.back();
    Trail.pop_back();
    Assign[L.var()] = Unassigned;
    Reason[L.var()] = -1;
    Level[L.var()] = -1;
  }
  TrailLim.resize(TargetLevel);
  PropHead = Trail.size();
}

int SatSolver::pickBranchVar() {
  int Best = -1;
  double BestActivity = -1.0;
  for (int Var = 0; Var < numVars(); ++Var) {
    if (Assign[Var] != Unassigned)
      continue;
    if (Activity[Var] > BestActivity) {
      BestActivity = Activity[Var];
      Best = Var;
    }
  }
  return Best;
}

SatSolver::Result SatSolver::solve() {
  if (KnownUnsat)
    return Result::Unsat;
  backtrack(0);
  if (propagate() >= 0) {
    KnownUnsat = true;
    return Result::Unsat;
  }

  uint64_t ConflictsSinceRestart = 0;
  uint64_t RestartLimit = 64;

  while (true) {
    int ConflictClause = propagate();
    if (ConflictClause >= 0) {
      ++Conflicts;
      ++ConflictsSinceRestart;
      if (TrailLim.empty()) {
        KnownUnsat = true;
        return Result::Unsat;
      }
      std::vector<Lit> Learned;
      int BackLevel = analyze(ConflictClause, Learned);
      backtrack(BackLevel);
      if (Learned.size() == 1) {
        enqueue(Learned[0], -1);
      } else {
        int Idx = static_cast<int>(Clauses.size());
        Watches[Learned[0].Value].push_back(Idx);
        Watches[Learned[1].Value].push_back(Idx);
        Lit Asserting = Learned[0];
        Clauses.push_back({std::move(Learned), true});
        enqueue(Asserting, Idx);
      }
      decayActivities();
      continue;
    }

    if (ConflictsSinceRestart >= RestartLimit) {
      ConflictsSinceRestart = 0;
      RestartLimit = RestartLimit + RestartLimit / 2;
      backtrack(0);
      continue;
    }

    int BranchVar = pickBranchVar();
    if (BranchVar < 0)
      return Result::Sat;
    ++Decisions;
    TrailLim.push_back(static_cast<int>(Trail.size()));
    enqueue(Lit(BranchVar, /*Negated=*/true), -1); // Default polarity false.
  }
}
