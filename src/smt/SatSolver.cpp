//===- smt/SatSolver.cpp - CDCL propositional solver ----------------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/SatSolver.h"

#include "core/Resource.h"

#include <algorithm>

using namespace pathinv;

int SatSolver::addVar() {
  int Var = static_cast<int>(Assign.size());
  Assign.push_back(Unassigned);
  Level.push_back(-1);
  Reason.push_back(-1);
  Activity.push_back(0.0);
  Watches.emplace_back(); // positive literal
  Watches.emplace_back(); // negative literal
  return Var;
}

bool SatSolver::addClause(std::vector<Lit> Clause) {
  return addClauseImpl(std::move(Clause), /*Redundant=*/false);
}

bool SatSolver::addLemma(std::vector<Lit> Clause) {
  return addClauseImpl(std::move(Clause), /*Redundant=*/true);
}

bool SatSolver::addClauseImpl(std::vector<Lit> Clause, bool Redundant) {
  if (KnownUnsat)
    return false;
  // Remove duplicates and detect tautologies with a stamped marker buffer —
  // no sort, no per-call allocation. The lazy SMT loop funnels a blocking
  // clause through here after every theory conflict, so this path is hot.
  if (LitMark.size() < 2 * Assign.size())
    LitMark.resize(2 * Assign.size(), 0);
  ++MarkStamp;
  ScratchLits.clear();
  for (Lit L : Clause) {
    assert(L.var() < numVars() && "literal over unknown variable");
    if (LitMark[L.Value] == MarkStamp)
      continue; // Duplicate literal.
    if (LitMark[(~L).Value] == MarkStamp)
      return true; // Tautology: p || !p.
    LitMark[L.Value] = MarkStamp;
    ScratchLits.push_back(L);
  }

  // Drop literals already false at level 0 (false forever); a literal true
  // at level 0 satisfies the clause permanently. Literals assigned above
  // level 0 are kept verbatim: solve() re-enters through backtrack(0), so
  // no backtrack is needed here — the old unconditional backtrack(0) threw
  // away the whole trail on every blocking clause. Filtering is done in
  // place in the scratch buffer; the surviving literals are copied out
  // only when a clause is actually stored.
  size_t Kept = 0;
  for (Lit L : ScratchLits) {
    if (!litUnassigned(L) && Level[L.var()] == 0) {
      if (litTrue(L))
        return true;
      continue;
    }
    ScratchLits[Kept++] = L;
  }
  ScratchLits.resize(Kept);
  std::vector<Lit> &Pruned = ScratchLits;
  if (Pruned.empty()) {
    KnownUnsat = true;
    return false;
  }
  if (Pruned.size() == 1) {
    // A unit must be asserted at level 0; backtrack only in this case (and
    // only when a literal is actually assigned above level 0).
    backtrack(0);
    if (!litUnassigned(Pruned[0])) {
      // Still assigned after backtracking means decided at level 0.
      if (litTrue(Pruned[0]))
        return true;
      KnownUnsat = true;
      return false;
    }
    enqueue(Pruned[0], -1);
    if (propagate() >= 0) {
      KnownUnsat = true;
      return false;
    }
    return true;
  }

  // Any two kept literals are valid watches: each is unassigned at level 0
  // (or assigned above it, which the next backtrack(0) undoes), so the
  // watch invariant holds whenever propagation runs at this clause's
  // resolution level.
  int Idx = static_cast<int>(Clauses.size());
  Watches[Pruned[0].Value].push_back(Idx);
  Watches[Pruned[1].Value].push_back(Idx);
  // Copy (not move) so the scratch buffer keeps its capacity for the next
  // call; the stored clause needs its own allocation either way.
  // Redundant clauses are seeded with the current activity increment
  // (like CDCL-learned ones): a fresh theory lemma must not be the first
  // purge victim just because it has not joined a conflict yet.
  Clauses.push_back({std::vector<Lit>(Pruned.begin(), Pruned.end()),
                     Redundant, Redundant ? ClauseActivityInc : 0.0});
  if (Redundant)
    ++RedundantClauses;
  return true;
}

void SatSolver::enqueue(Lit L, int ReasonClause) {
  assert(litUnassigned(L) && "enqueueing an assigned literal");
  Assign[L.var()] = L.negated() ? FalseVal : TrueVal;
  Level[L.var()] = static_cast<int>(TrailLim.size());
  Reason[L.var()] = ReasonClause;
  Trail.push_back(L);
}

int SatSolver::propagate() {
  while (PropHead < Trail.size()) {
    Lit L = Trail[PropHead++];
    ++Propagations;
    // Clauses watching ~L must be inspected.
    std::vector<int> &WatchList = Watches[(~L).Value];
    std::vector<int> Kept;
    Kept.reserve(WatchList.size());
    for (size_t WI = 0; WI < WatchList.size(); ++WI) {
      int CI = WatchList[WI];
      Clause &C = Clauses[CI];
      // Normalize: watched literal ~L at position 1.
      if (C.Lits[0] == ~L)
        std::swap(C.Lits[0], C.Lits[1]);
      assert(C.Lits[1] == ~L && "watch list out of sync");
      if (litTrue(C.Lits[0])) {
        Kept.push_back(CI);
        continue;
      }
      // Find a replacement watch.
      bool Found = false;
      for (size_t K = 2; K < C.Lits.size(); ++K) {
        if (!litFalse(C.Lits[K])) {
          std::swap(C.Lits[1], C.Lits[K]);
          Watches[C.Lits[1].Value].push_back(CI);
          Found = true;
          break;
        }
      }
      if (Found)
        continue;
      // Unit or conflicting.
      Kept.push_back(CI);
      if (litFalse(C.Lits[0])) {
        // Conflict: restore remaining watches and report.
        for (size_t K = WI + 1; K < WatchList.size(); ++K)
          Kept.push_back(WatchList[K]);
        WatchList = std::move(Kept);
        return CI;
      }
      enqueue(C.Lits[0], CI);
    }
    WatchList = std::move(Kept);
  }
  return -1;
}

void SatSolver::bumpVar(int Var) {
  Activity[Var] += ActivityInc;
  if (Activity[Var] > 1e100) {
    for (double &A : Activity)
      A *= 1e-100;
    ActivityInc *= 1e-100;
  }
}

void SatSolver::bumpClause(int ClauseIdx) {
  Clause &C = Clauses[ClauseIdx];
  C.Activity += ClauseActivityInc;
  if (C.Activity > 1e20) {
    for (Clause &D : Clauses)
      D.Activity *= 1e-20;
    ClauseActivityInc *= 1e-20;
  }
}

void SatSolver::decayActivities() {
  ActivityInc *= 1.05;
  ClauseActivityInc *= 1.001;
}

int SatSolver::analyze(int ConflictClause, std::vector<Lit> &Learned) {
  Learned.clear();
  Learned.push_back(Lit()); // Slot for the asserting (UIP) literal.
  int CurrentLevel = static_cast<int>(TrailLim.size());
  std::vector<bool> Seen(Assign.size(), false);
  int Counter = 0;
  Lit P;
  bool HaveP = false;
  size_t TrailIdx = Trail.size();
  int ClauseIdx = ConflictClause;

  do {
    assert(ClauseIdx >= 0 && "conflict analysis lost its reason");
    bumpClause(ClauseIdx);
    const Clause &C = Clauses[ClauseIdx];
    // When following a reason clause, Lits[0] is the propagated literal P
    // (propagation and learning both place it there, and it cannot be
    // swapped away while the clause serves as a reason).
    assert((!HaveP || C.Lits[0] == P) && "reason clause out of order");
    for (size_t I = HaveP ? 1 : 0; I < C.Lits.size(); ++I) {
      Lit Q = C.Lits[I];
      int Var = Q.var();
      if (Seen[Var] || Level[Var] == 0)
        continue;
      Seen[Var] = true;
      bumpVar(Var);
      if (Level[Var] == CurrentLevel)
        ++Counter;
      else
        Learned.push_back(Q);
    }
    // Pick the next trail literal to resolve on.
    while (!Seen[Trail[TrailIdx - 1].var()])
      --TrailIdx;
    --TrailIdx;
    P = Trail[TrailIdx];
    HaveP = true;
    Seen[P.var()] = false;
    ClauseIdx = Reason[P.var()];
    --Counter;
  } while (Counter > 0);

  Learned[0] = ~P;

  // Backjump level: highest level among the other literals.
  int BackLevel = 0;
  size_t MaxIdx = 1;
  for (size_t I = 1; I < Learned.size(); ++I) {
    if (Level[Learned[I].var()] > BackLevel) {
      BackLevel = Level[Learned[I].var()];
      MaxIdx = I;
    }
  }
  if (Learned.size() > 1)
    std::swap(Learned[1], Learned[MaxIdx]);
  return BackLevel;
}

void SatSolver::backtrack(int TargetLevel) {
  if (static_cast<int>(TrailLim.size()) <= TargetLevel)
    return;
  size_t Bound = TrailLim[TargetLevel];
  while (Trail.size() > Bound) {
    Lit L = Trail.back();
    Trail.pop_back();
    Assign[L.var()] = Unassigned;
    Reason[L.var()] = -1;
    Level[L.var()] = -1;
  }
  TrailLim.resize(TargetLevel);
  PropHead = Trail.size();
}

void SatSolver::purgeLearned(size_t MaxKeep) {
  if (RedundantClauses <= MaxKeep || KnownUnsat)
    return;
  backtrack(0);

  // Keep every irredundant clause, every redundant clause serving as the
  // reason of a (level-0) assignment, and the MaxKeep most active
  // redundant clauses beyond those.
  std::vector<char> IsReason(Clauses.size(), 0);
  for (Lit L : Trail)
    if (Reason[L.var()] >= 0)
      IsReason[Reason[L.var()]] = 1;

  std::vector<std::pair<double, int>> Candidates;
  Candidates.reserve(RedundantClauses);
  for (size_t I = 0; I < Clauses.size(); ++I)
    if (Clauses[I].Learned && !IsReason[I])
      Candidates.push_back({Clauses[I].Activity, static_cast<int>(I)});
  if (Candidates.size() <= MaxKeep)
    return;
  std::nth_element(Candidates.begin(), Candidates.begin() + MaxKeep,
                   Candidates.end(),
                   [](const auto &A, const auto &B) { return A.first > B.first; });

  std::vector<char> Drop(Clauses.size(), 0);
  for (size_t I = MaxKeep; I < Candidates.size(); ++I)
    Drop[Candidates[I].second] = 1;

  // Compact the clause store and remap reasons; watches are rebuilt
  // wholesale (the two watch positions were valid before the purge and
  // the trail did not change, so they remain valid).
  std::vector<int> NewIdx(Clauses.size(), -1);
  size_t Next = 0;
  for (size_t I = 0; I < Clauses.size(); ++I) {
    if (Drop[I]) {
      --RedundantClauses;
      ++PurgedClauses;
      continue;
    }
    NewIdx[I] = static_cast<int>(Next);
    if (Next != I)
      Clauses[Next] = std::move(Clauses[I]);
    ++Next;
  }
  Clauses.resize(Next);
  for (int &R : Reason)
    if (R >= 0)
      R = NewIdx[R];
  for (std::vector<int> &W : Watches)
    W.clear();
  for (size_t I = 0; I < Clauses.size(); ++I) {
    Watches[Clauses[I].Lits[0].Value].push_back(static_cast<int>(I));
    Watches[Clauses[I].Lits[1].Value].push_back(static_cast<int>(I));
  }
}

void SatSolver::analyzeFinal(Lit Failed) {
  FailedAssumptions.clear();
  FailedAssumptions.push_back(Failed);
  if (Level[Failed.var()] == 0 || TrailLim.empty())
    return; // ~Failed holds at level 0: Failed alone contradicts the DB.
  // Walk the trail top-down from the first decision level. Every decision
  // above level 0 is an assumption here: analyzeFinal only runs while
  // assumptions are being (re-)established, before any free decision.
  std::vector<bool> Seen(Assign.size(), false);
  Seen[Failed.var()] = true;
  for (size_t I = Trail.size(); I-- > static_cast<size_t>(TrailLim[0]);) {
    Lit L = Trail[I];
    if (!Seen[L.var()])
      continue;
    Seen[L.var()] = false;
    if (Reason[L.var()] < 0) {
      FailedAssumptions.push_back(L);
      continue;
    }
    const Clause &C = Clauses[Reason[L.var()]];
    for (size_t K = 1; K < C.Lits.size(); ++K) {
      int Var = C.Lits[K].var();
      if (Level[Var] > 0)
        Seen[Var] = true;
    }
  }
}

int SatSolver::pickBranchVar() {
  int Best = -1;
  double BestActivity = -1.0;
  for (int Var = 0; Var < numVars(); ++Var) {
    if (Assign[Var] != Unassigned)
      continue;
    if (Activity[Var] > BestActivity) {
      BestActivity = Activity[Var];
      Best = Var;
    }
  }
  return Best;
}

SatSolver::Result SatSolver::solve(const std::vector<Lit> &Assumptions) {
  FailedAssumptions.clear();
  if (KnownUnsat)
    return Result::Unsat;
  backtrack(0);
  if (propagate() >= 0) {
    KnownUnsat = true;
    return Result::Unsat;
  }

  uint64_t ConflictsSinceRestart = 0;
  uint64_t RestartLimit = 64;

  while (true) {
    int ConflictClause = propagate();
    if (ConflictClause >= 0) {
      ++Conflicts;
      ++ConflictsSinceRestart;
      if (!resourceCharge(ResourceKind::SatConflicts)) {
        // Cooperative interruption: unwind to level 0 so the clause
        // database and watches are consistent for the next solve().
        backtrack(0);
        return Result::Interrupted;
      }
      if (TrailLim.empty()) {
        KnownUnsat = true;
        return Result::Unsat;
      }
      std::vector<Lit> Learned;
      int BackLevel = analyze(ConflictClause, Learned);
      backtrack(BackLevel);
      if (Learned.size() == 1) {
        enqueue(Learned[0], -1);
      } else {
        int Idx = static_cast<int>(Clauses.size());
        Watches[Learned[0].Value].push_back(Idx);
        Watches[Learned[1].Value].push_back(Idx);
        Lit Asserting = Learned[0];
        Clauses.push_back({std::move(Learned), true, ClauseActivityInc});
        ++RedundantClauses;
        enqueue(Asserting, Idx);
      }
      decayActivities();
      continue;
    }

    if (ConflictsSinceRestart >= RestartLimit) {
      ConflictsSinceRestart = 0;
      RestartLimit = RestartLimit + RestartLimit / 2;
      backtrack(0);
      continue;
    }

    // (Re-)establish assumptions before any free decision. Backjumps may
    // cancel assumption levels; this loop restores them in order, so all
    // decisions above level 0 are assumptions until every assumption is
    // decided.
    if (TrailLim.size() < Assumptions.size()) {
      Lit A = Assumptions[TrailLim.size()];
      assert(A.var() < numVars() && "assumption over unknown variable");
      if (litTrue(A)) {
        // Already implied: open an (empty) level so assumption indices and
        // decision levels stay aligned.
        TrailLim.push_back(static_cast<int>(Trail.size()));
        continue;
      }
      if (litFalse(A)) {
        // Forced false by the clauses and earlier assumptions: unsat under
        // assumptions, with the responsible subset as the core. The clause
        // set itself stays (potentially) satisfiable.
        analyzeFinal(A);
        return Result::Unsat;
      }
      TrailLim.push_back(static_cast<int>(Trail.size()));
      enqueue(A, -1);
      continue;
    }

    int BranchVar = pickBranchVar();
    if (BranchVar < 0)
      return Result::Sat;
    ++Decisions;
    TrailLim.push_back(static_cast<int>(Trail.size()));
    enqueue(Lit(BranchVar, /*Negated=*/true), -1); // Default polarity false.
  }
}
