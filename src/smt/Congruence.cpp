//===- smt/Congruence.cpp - Congruence closure for EUF -------------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/Congruence.h"

#include <algorithm>

using namespace pathinv;

void CongruenceClosure::registerTerm(const Term *T) {
  if (known(T))
    return;
  switch (T->kind()) {
  case TermKind::Var:
  case TermKind::IntConst:
    break;
  case TermKind::Select:
  case TermKind::Apply: {
    for (const Term *Op : T->operands())
      registerTerm(Op);
    break;
  }
  case TermKind::Add:
  case TermKind::Mul:
    // Arithmetic structure is the simplex's business; register only the
    // embedded atoms.
    for (const Term *Op : T->operands())
      registerTerm(Op);
    return;
  default:
    assert(false && "registering a non-term in congruence closure");
    return;
  }

  Info.emplace(T, NodeInfo{T, nullptr, -1, nullptr, nullptr, {}});
  Nodes.push_back(T);

  if (T->kind() == TermKind::Select || T->kind() == TermKind::Apply) {
    for (const Term *Op : T->operands()) {
      if (!known(Op))
        continue; // Arithmetic subterm; atoms inside were registered.
      Info[find(Op)].Uses.push_back(T);
    }
    // Check for an existing congruent application.
    std::vector<const Term *> Sig = signature(T);
    for (const Term *Other : Nodes) {
      if (Other == T || Other->kind() != T->kind())
        continue;
      if (T->kind() == TermKind::Apply && Other->name() != T->name())
        continue;
      if (Other->numOperands() != T->numOperands())
        continue;
      if (signature(Other) == Sig) {
        merge(T, Other, CongruenceTag, T, Other);
        break;
      }
    }
  }
}

const Term *CongruenceClosure::find(const Term *T) {
  NodeInfo &NI = Info.at(T);
  if (NI.Parent == T)
    return T;
  const Term *Root = find(NI.Parent);
  NI.Parent = Root; // Path compression (proof forest is separate).
  return Root;
}

const Term *CongruenceClosure::representative(const Term *T) {
  registerTerm(T);
  return find(T);
}

std::vector<const Term *> CongruenceClosure::signature(const Term *App) {
  std::vector<const Term *> Sig;
  Sig.reserve(App->numOperands());
  for (const Term *Op : App->operands())
    Sig.push_back(known(Op) ? find(Op) : Op);
  return Sig;
}

bool CongruenceClosure::assertEqual(const Term *T1, const Term *T2, int Tag) {
  if (Conflict)
    return false;
  registerTerm(T1);
  registerTerm(T2);
  return merge(T1, T2, Tag, nullptr, nullptr);
}

bool CongruenceClosure::assertDisequal(const Term *T1, const Term *T2,
                                       int Tag) {
  if (Conflict)
    return false;
  registerTerm(T1);
  registerTerm(T2);
  if (find(T1) == find(T2)) {
    Conflict = true;
    std::vector<int> Core = explainEquality(T1, T2);
    Core.push_back(Tag);
    ConflictCore = std::move(Core);
    return false;
  }
  Disequalities.emplace_back(T1, T2, Tag);
  return true;
}

bool CongruenceClosure::areEqual(const Term *T1, const Term *T2) {
  if (T1 == T2)
    return true;
  registerTerm(T1);
  registerTerm(T2);
  // Arithmetic terms (Add/Mul) are not congruence nodes — their equality
  // is the simplex's business — so answer conservatively instead of
  // looking them up.
  if (!known(T1) || !known(T2))
    return false;
  return find(T1) == find(T2);
}

bool CongruenceClosure::merge(const Term *T1, const Term *T2, int Tag,
                              const Term *CongrLhs, const Term *CongrRhs) {
  const Term *R1 = find(T1);
  const Term *R2 = find(T2);
  if (R1 == R2)
    return true;

  // Re-root T1's proof tree so we can hang it under T2.
  {
    const Term *Cur = T1;
    const Term *PrevParent = nullptr;
    int PrevTag = -1;
    const Term *PrevLhs = nullptr, *PrevRhs = nullptr;
    while (Cur) {
      NodeInfo &NI = Info.at(Cur);
      const Term *Next = NI.ProofParent;
      int NextTag = NI.ProofTag;
      const Term *NextLhs = NI.CongrLhs, *NextRhs = NI.CongrRhs;
      NI.ProofParent = PrevParent;
      NI.ProofTag = PrevTag;
      NI.CongrLhs = PrevLhs;
      NI.CongrRhs = PrevRhs;
      PrevParent = Cur;
      PrevTag = NextTag;
      PrevLhs = NextLhs;
      PrevRhs = NextRhs;
      Cur = Next;
    }
    NodeInfo &T1Info = Info.at(T1);
    T1Info.ProofParent = T2;
    T1Info.ProofTag = Tag;
    T1Info.CongrLhs = CongrLhs;
    T1Info.CongrRhs = CongrRhs;
  }

  // Distinct integer constants cannot be merged.
  auto constWitness = [this](const Term *Root) -> const Term * {
    for (const Term *Node : Nodes)
      if (Node->isIntConst() && find(Node) == Root)
        return Node;
    return nullptr;
  };
  const Term *C1 = constWitness(R1);
  const Term *C2 = constWitness(R2);

  // Union (R1 into R2) and migrate use lists.
  std::vector<const Term *> Uses1 = std::move(Info.at(R1).Uses);
  std::vector<const Term *> Uses2 = Info.at(R2).Uses;
  Info.at(R1).Parent = R2;
  auto &MergedUses = Info.at(R2).Uses;
  MergedUses.insert(MergedUses.end(), Uses1.begin(), Uses1.end());

  if (C1 && C2 && C1->value() != C2->value()) {
    Conflict = true;
    ConflictCore = explainEquality(C1, C2);
    return false;
  }

  // Congruence propagation between the two use lists.
  for (const Term *U : Uses1) {
    for (const Term *V : Uses2) {
      if (U->kind() != V->kind() || U->numOperands() != V->numOperands())
        continue;
      if (U->kind() == TermKind::Apply && U->name() != V->name())
        continue;
      if (find(U) == find(V))
        continue;
      if (signature(U) == signature(V)) {
        if (!merge(U, V, CongruenceTag, U, V))
          return false;
      }
    }
  }

  // Re-check disequalities.
  for (const auto &[A, B, DTag] : Disequalities) {
    if (find(A) == find(B)) {
      Conflict = true;
      std::vector<int> Core = explainEquality(A, B);
      Core.push_back(DTag);
      ConflictCore = std::move(Core);
      return false;
    }
  }
  return true;
}

const Term *CongruenceClosure::nearestCommonAncestor(const Term *T1,
                                                     const Term *T2) {
  std::set<const Term *, TermIdLess> OnPath;
  for (const Term *Cur = T1; Cur; Cur = Info.at(Cur).ProofParent)
    OnPath.insert(Cur);
  for (const Term *Cur = T2; Cur; Cur = Info.at(Cur).ProofParent)
    if (OnPath.count(Cur))
      return Cur;
  return nullptr;
}

void CongruenceClosure::explainAlongPath(const Term *From, const Term *To,
                                         std::set<int> &Tags) {
  for (const Term *Cur = From; Cur != To;) {
    NodeInfo &NI = Info.at(Cur);
    assert(NI.ProofParent && "broken proof path");
    if (NI.ProofTag == CongruenceTag) {
      // Congruent applications: recursively explain argument equalities.
      const Term *L = NI.CongrLhs;
      const Term *R = NI.CongrRhs;
      for (size_t I = 0; I < L->numOperands(); ++I) {
        const Term *A = L->operand(I);
        const Term *B = R->operand(I);
        if (A == B || !known(A) || !known(B))
          continue;
        const Term *Nca = nearestCommonAncestor(A, B);
        assert(Nca && "congruence premise not connected");
        explainAlongPath(A, Nca, Tags);
        explainAlongPath(B, Nca, Tags);
      }
    } else if (NI.ProofTag >= 0) {
      Tags.insert(NI.ProofTag);
    }
    Cur = NI.ProofParent;
  }
}

std::vector<int> CongruenceClosure::explainEquality(const Term *T1,
                                                    const Term *T2) {
  std::set<int> Tags;
  const Term *Nca = nearestCommonAncestor(T1, T2);
  assert(Nca && "explaining equality of unconnected terms");
  explainAlongPath(T1, Nca, Tags);
  explainAlongPath(T2, Nca, Tags);
  return std::vector<int>(Tags.begin(), Tags.end());
}

std::vector<std::pair<const Term *, const Term *>>
CongruenceClosure::equivalentPairs() {
  std::map<const Term *, const Term *, TermIdLess> FirstMember;
  std::vector<std::pair<const Term *, const Term *>> Result;
  for (const Term *Node : Nodes) {
    const Term *Root = find(Node);
    auto [It, Inserted] = FirstMember.try_emplace(Root, Node);
    if (!Inserted)
      Result.emplace_back(It->second, Node);
  }
  return Result;
}
