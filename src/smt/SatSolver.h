//===- smt/SatSolver.h - CDCL propositional solver --------------*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Conflict-driven clause-learning SAT solver.
///
/// The propositional engine under the lazy SMT loop: two-watched-literal
/// propagation, first-UIP conflict analysis with clause learning, VSIDS-style
/// activity ordering, and geometric restarts. Literals use the usual integer
/// encoding: variable v has literals 2v (positive) and 2v+1 (negative).
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_SMT_SATSOLVER_H
#define PATHINV_SMT_SATSOLVER_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace pathinv {

/// Propositional literal: variable index with sign.
struct Lit {
  int Value = -1; ///< 2*var + (negated ? 1 : 0).

  Lit() = default;
  Lit(int Var, bool Negated) : Value(2 * Var + (Negated ? 1 : 0)) {}

  int var() const { return Value >> 1; }
  bool negated() const { return Value & 1; }
  Lit operator~() const {
    Lit L;
    L.Value = Value ^ 1;
    return L;
  }
  bool operator==(const Lit &RHS) const { return Value == RHS.Value; }
  bool operator!=(const Lit &RHS) const { return Value != RHS.Value; }
};

/// CDCL SAT solver over clauses added with addClause().
class SatSolver {
public:
  /// Interrupted: the job's ResourceController tripped mid-search. The
  /// solver backtracks to level 0 and stays fully valid — clauses,
  /// learned state, and activities are kept, and a later solve() resumes
  /// from them. Interrupted is never a verdict about the clause set.
  enum class Result : uint8_t { Sat, Unsat, Interrupted };

  /// Creates a fresh variable and returns its index.
  int addVar();

  int numVars() const { return static_cast<int>(Assign.size()); }

  /// Adds a clause (empty clause makes the instance unsat). Returns false
  /// if the solver is already known unsat.
  bool addClause(std::vector<Lit> Clause);

  /// Adds a *redundant* clause: one implied by the problem (a theory
  /// lemma, e.g. the blocking clause of a lazy-SMT conflict) rather than
  /// defining it. Redundant clauses — together with CDCL-learned ones —
  /// are eligible for purgeLearned(); everything added via addClause() is
  /// irredundant and permanent.
  bool addLemma(std::vector<Lit> Clause);

  /// Number of deletable clauses currently stored (CDCL-learned clauses
  /// and lemmas added via addLemma()).
  size_t numRedundantClauses() const { return RedundantClauses; }
  size_t numClauses() const { return Clauses.size(); }
  uint64_t numPurgedClauses() const { return PurgedClauses; }

  /// Garbage-collects the redundant clause set down to (at most)
  /// \p MaxKeep clauses, preferring the most active ones (activity is
  /// bumped whenever a clause participates in conflict analysis). Clauses
  /// currently serving as the reason of an assigned literal are always
  /// kept. Sound: redundant clauses are implied, so deleting them only
  /// costs re-derivation. Backtracks to decision level 0.
  void purgeLearned(size_t MaxKeep);

  /// Solves the current clause set, optionally under a list of assumption
  /// literals. Assumptions are decided (in order) before any free decision,
  /// so learned clauses never depend on them: the clause database — and
  /// everything learned from it — stays valid across calls with different
  /// assumption sets. On Unsat under assumptions, failedAssumptions()
  /// holds a subset of the assumptions that is inconsistent with the
  /// clauses; when it is empty the clause set itself is unsatisfiable.
  Result solve(const std::vector<Lit> &Assumptions = {});

  /// After an Unsat solve(): the responsible assumption subset (original
  /// assumption literals; empty when the clause set alone is unsat).
  const std::vector<Lit> &failedAssumptions() const {
    return FailedAssumptions;
  }

  /// \returns true once the clause set is unsatisfiable independent of any
  /// assumptions.
  bool knownUnsat() const { return KnownUnsat; }

  /// After Sat: value of variable \p Var in the model.
  bool modelValue(int Var) const {
    assert(Assign[Var] != Unassigned && "model of unassigned variable");
    return Assign[Var] == TrueVal;
  }

  /// Statistics.
  uint64_t numConflicts() const { return Conflicts; }
  uint64_t numDecisions() const { return Decisions; }
  uint64_t numPropagations() const { return Propagations; }

private:
  static constexpr int8_t Unassigned = 0;
  static constexpr int8_t TrueVal = 1;
  static constexpr int8_t FalseVal = -1;

  struct Clause {
    std::vector<Lit> Lits;
    bool Learned = false; ///< Redundant (CDCL-learned or theory lemma).
    double Activity = 0;  ///< Conflict-analysis participation (decayed).
  };

  bool litTrue(Lit L) const {
    return Assign[L.var()] == (L.negated() ? FalseVal : TrueVal);
  }
  bool litFalse(Lit L) const {
    return Assign[L.var()] == (L.negated() ? TrueVal : FalseVal);
  }
  bool litUnassigned(Lit L) const { return Assign[L.var()] == Unassigned; }

  bool addClauseImpl(std::vector<Lit> Clause, bool Redundant);
  void enqueue(Lit L, int Reason);
  /// Unit propagation; returns the index of a conflicting clause or -1.
  int propagate();
  /// First-UIP conflict analysis; fills the learned clause and returns the
  /// backjump level.
  int analyze(int ConflictClause, std::vector<Lit> &Learned);
  /// Explains a false assumption \p Failed: walks the implication graph of
  /// ~Failed and collects the assumption decisions it rests on into
  /// FailedAssumptions (together with \p Failed itself).
  void analyzeFinal(Lit Failed);
  void backtrack(int Level);
  void bumpVar(int Var);
  void bumpClause(int ClauseIdx);
  void decayActivities();
  int pickBranchVar();

  std::vector<Clause> Clauses;
  std::vector<std::vector<int>> Watches; ///< Literal -> clause indices.
  std::vector<int8_t> Assign;            ///< Variable -> value.
  std::vector<int> Level;                ///< Variable -> decision level.
  std::vector<int> Reason;               ///< Variable -> clause index or -1.
  std::vector<Lit> Trail;
  std::vector<int> TrailLim; ///< Trail indices where levels start.
  size_t PropHead = 0;
  std::vector<double> Activity;
  double ActivityInc = 1.0;
  double ClauseActivityInc = 1.0;
  size_t RedundantClauses = 0;
  uint64_t PurgedClauses = 0;
  bool KnownUnsat = false;

  // addClause scratch state: stamped per-literal markers for sort-free
  // dedup/tautology detection, and a reusable literal buffer.
  std::vector<uint64_t> LitMark;
  uint64_t MarkStamp = 0;
  std::vector<Lit> ScratchLits;
  std::vector<Lit> FailedAssumptions;

  uint64_t Conflicts = 0;
  uint64_t Decisions = 0;
  uint64_t Propagations = 0;
};

} // namespace pathinv

#endif // PATHINV_SMT_SATSOLVER_H
