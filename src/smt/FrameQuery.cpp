//===- smt/FrameQuery.cpp - Assumption-batch frame queries -----------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/FrameQuery.h"

using namespace pathinv;
using namespace pathinv::smt;

CheckResult
FrameQueryContext::query(const Term *Base,
                         const std::vector<const Term *> &Assumptions) {
  ++Queries;
  Ctx.push();
  Ctx.assertTerm(Base);
  CheckResult Result = Ctx.checkSat(Assumptions);
  Ctx.pop();
  return Result;
}

CheckResult
FrameQueryContext::query(const std::vector<const Term *> &Base,
                         const std::vector<const Term *> &Assumptions) {
  ++Queries;
  Ctx.push();
  for (const Term *F : Base)
    Ctx.assertTerm(F);
  CheckResult Result = Ctx.checkSat(Assumptions);
  Ctx.pop();
  return Result;
}
