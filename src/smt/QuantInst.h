//===- smt/QuantInst.h - Quantifier instantiation ---------------*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reduction of universally quantified queries to ground ones, following
/// the hierarchical reasoning of Section 4.2 (and the array-property
/// decision procedure it relies on):
///
///   * negative-polarity universals are skolemized (a fresh constant
///     witnesses the violation), and
///   * positive-polarity universals are replaced by finitely many ground
///     instances at the "relevant" index terms — the array-read indices
///     occurring in the ground part of the query plus all skolem
///     constants.
///
/// The transformation is UNSAT-preserving in one direction: if the result
/// is unsatisfiable then so is the input (instantiation weakens positive
/// universals). Entailment checks built on it are therefore sound; on the
/// array-property fragment the chosen instance set also makes them
/// complete.
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_SMT_QUANTINST_H
#define PATHINV_SMT_QUANTINST_H

#include "logic/TermRewrite.h"

#include <cstdint>

namespace pathinv {

class SmtSolver;

/// Rewrites \p F into a quantifier-free formula whose unsatisfiability
/// implies the unsatisfiability of \p F. \p FreshCounter provides unique
/// skolem names across calls.
const Term *instantiateQuantifiers(TermManager &TM, const Term *F,
                                   uint64_t &FreshCounter);

/// Sound entailment with quantifiers: returns true only if
/// \p Hyp entails \p Concl. (May return false on entailments outside the
/// array-property fragment.) Skolem names restart per query so identical
/// queries produce identical ground formulas — keeping the SMT solver's
/// memoization effective across the many repeated queries of predicate
/// abstraction.
bool entailsWithQuant(TermManager &TM, SmtSolver &Solver, const Term *Hyp,
                      const Term *Concl);

} // namespace pathinv

#endif // PATHINV_SMT_QUANTINST_H
