//===- smt/Simplex.h - Exact simplex for linear arithmetic -----*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact-rational simplex deciding conjunctions of linear constraints.
///
/// This is the linear-arithmetic engine the paper delegates to SICStus
/// CLP(Q) [29]: a general simplex in the style of Dutertre & de Moura
/// ("A fast linear-arithmetic solver for DPLL(T)", CAV 2006) with
/// * exact rational arithmetic (no floating point anywhere),
/// * strict inequalities via infinitesimal delta-rationals,
/// * Bland's rule for termination, and
/// * unsat cores as sets of client-supplied constraint tags (a Farkas
///   certificate: the violated row is a nonnegative combination of the
///   returned constraints).
///
/// It serves three masters: path-formula feasibility checks (counterexample
/// analysis), entailment queries of predicate abstraction, and the LP
/// subproblems of template-parameter search in the synthesizer.
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_SMT_SIMPLEX_H
#define PATHINV_SMT_SIMPLEX_H

#include "support/DeltaRational.h"

#include <map>
#include <optional>
#include <vector>

namespace pathinv {

/// Relation of a linear constraint `expr REL rhs`.
enum class SimplexRel : uint8_t { Le, Lt, Ge, Gt, Eq };

/// Exact simplex over rationals. Variables are dense integer indices
/// created by addVar(); constraints are linear combinations of variables.
class Simplex {
public:
  /// Interrupted: the job's ResourceController tripped between pivots.
  /// The tableau invariant holds (all rows consistent, bounds intact), so
  /// the object remains fully usable — push/pop still work and a later
  /// check() resumes the repair where it stopped. Interrupted says
  /// nothing about feasibility.
  enum class Result : uint8_t { Sat, Unsat, Interrupted };

  Simplex() = default;

  /// Creates a fresh unconstrained variable and returns its index.
  int addVar();

  int numVars() const { return static_cast<int>(Vars.size()); }

  /// Adds `sum Coeffs REL Rhs`. \p Tag identifies the constraint in unsat
  /// cores (clients typically use literal indices). Variables may repeat in
  /// \p Coeffs; coefficients are accumulated.
  void addConstraint(const std::vector<std::pair<int, Rational>> &Coeffs,
                     SimplexRel Rel, const Rational &Rhs, int Tag);

  /// Convenience: bounds a single variable.
  void addBound(int Var, SimplexRel Rel, const Rational &Rhs, int Tag);

  /// Decides the asserted constraints. May be called repeatedly as
  /// constraints are added (the tableau is incremental).
  Result check();

  /// \name Scopes
  /// Backtrackable constraint assertion in the Dutertre–de Moura style:
  /// pop() restores every bound (the semantic content of a constraint) to
  /// its pre-push value and clears conflicts raised inside the scope. The
  /// tableau itself is not rewound — rows remain valid slack definitions —
  /// but rows owned by slack variables introduced in the scope are dropped
  /// when still basic, and popped variables linger as unconstrained dead
  /// columns (their indices are never reused). Clients that pop often
  /// should rebuild once dead columns dominate (see numVars()).
  ///
  /// Scopes nest arbitrarily, which is what the theory solver's scoped
  /// branch-and-bound relies on: a query scope holds the query's
  /// constraints, and every branch node pushes a further scope carrying
  /// only its branch bound. check() after such a push performs
  /// dual-simplex-style repair — it starts from the current (previously
  /// feasible) assignment and pivots only on bound violations the new
  /// bounds introduced — so branching and backtracking never rebuild or
  /// re-solve the tableau from scratch. numPivots() exposes the
  /// cumulative repair-pivot count so callers can attribute that work.
  /// @{
  void push();
  void pop();
  size_t numScopes() const { return Scopes.size(); }
  /// @}

  /// After an Unsat result: tags of a (usually small) inconsistent subset.
  const std::vector<int> &unsatCore() const {
    assert(HasConflict && "unsatCore() without a conflict");
    return Core;
  }

  /// After a Sat result: a rational model value for \p Var (delta is
  /// concretized to a sufficiently small positive rational).
  Rational modelValue(int Var) const;

  /// After a Sat result: copies all model values (index = variable).
  std::vector<Rational> model() const;

  /// Cumulative pivots performed by check() over this tableau's lifetime.
  /// The delta across one scoped check() is the cost of repairing the
  /// assignment after the scope's bound assertions.
  uint64_t numPivots() const { return NumPivots; }

private:
  struct BoundInfo {
    DeltaRational Value;
    int Tag = -1;
    bool Present = false;
  };

  struct VarState {
    DeltaRational Beta;   ///< Current assignment.
    BoundInfo Lower;
    BoundInfo Upper;
    bool Basic = false;
  };

  using Row = std::map<int, Rational>; ///< Nonbasic var -> coefficient.

  bool assertLower(int Var, const DeltaRational &Value, int Tag);
  bool assertUpper(int Var, const DeltaRational &Value, int Tag);
  /// Records the current state of a bound about to be overwritten (no-op
  /// outside any scope, so unscoped use stays allocation-free).
  void recordBoundUndo(int Var, bool IsLower);
  /// Sets beta of nonbasic \p Var to \p Value, updating basic rows.
  void updateNonbasic(int Var, const DeltaRational &Value);
  /// Pivots basic \p Basic with nonbasic \p Nonbasic and sets beta of
  /// \p Basic to \p Target.
  void pivotAndUpdate(int Basic, int Nonbasic, const DeltaRational &Target);
  void pivot(int Basic, int Nonbasic);
  /// Computes a concrete positive rational for delta, small enough that
  /// substituting it preserves all strict comparisons of the model.
  Rational concretizeDelta() const;

  struct BoundUndo {
    int Var;
    bool IsLower;
    BoundInfo Old;
  };
  struct ScopeMark {
    size_t UndoMark;  ///< UndoTrail size at push.
    int VarMark;      ///< numVars() at push.
    bool HadConflict; ///< Conflict state at push.
  };

  std::vector<VarState> Vars;
  std::map<int, Row> Rows; ///< Basic var -> row over nonbasic vars.
  std::vector<int> Core;
  bool HasConflict = false;
  std::vector<BoundUndo> UndoTrail;
  std::vector<ScopeMark> Scopes;
  uint64_t NumPivots = 0;
};

} // namespace pathinv

#endif // PATHINV_SMT_SIMPLEX_H
