//===- core/Engine.cpp - Engine dispatch and portfolio racing --------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Engine.h"

#include "cegar/Engine.h"
#include "pdr/Pdr.h"
#include "support/BigInt.h"
#include "synth/PathInvariants.h"

#include <algorithm>
#include <cassert>

using namespace pathinv;

const char *pathinv::engineKindName(EngineKind Kind) {
  switch (Kind) {
  case EngineKind::Cegar:
    return "cegar";
  case EngineKind::Pdr:
    return "pdr";
  case EngineKind::Portfolio:
    return "portfolio";
  }
  return "unknown";
}

bool pathinv::parseEngineKind(const std::string &Name, EngineKind &Out) {
  if (Name == "cegar") {
    Out = EngineKind::Cegar;
    return true;
  }
  if (Name == "pdr") {
    Out = EngineKind::Pdr;
    return true;
  }
  if (Name == "portfolio") {
    Out = EngineKind::Portfolio;
    return true;
  }
  return false;
}

std::unique_ptr<VerificationEngine>
pathinv::makeEngine(EngineKind Kind, const Program &P, SmtSolver &Solver,
                    const EngineOptions &Opts) {
  switch (Kind) {
  case EngineKind::Cegar:
    return std::make_unique<CegarEngine>(P, Solver, Opts);
  case EngineKind::Pdr:
    return std::make_unique<PdrEngine>(P, Solver, Opts);
  case EngineKind::Portfolio:
    break; // The portfolio is a driver over backends, not a backend.
  }
  assert(false && "makeEngine: not a backend kind");
  return nullptr;
}

namespace {

/// One portfolio lane: a backend plus its own controller carrying the
/// full job limits. Lanes interleave on one thread (the controller is
/// not thread-safe by design), so the wall deadline is naturally shared
/// while step budgets are per lane.
struct Lane {
  EngineKind Kind;
  std::unique_ptr<VerificationEngine> Eng;
  ResourceController RC;
  EngineResult Last;
  bool Done = false;

  Lane(EngineKind Kind, const ResourceLimits &Limits)
      : Kind(Kind), RC(Limits) {}
};

/// The escalation both backends would otherwise each run inside their
/// lane: one whole-program invariant map generation. A verified map with
/// eta(error) = false is a complete safety proof regardless of which
/// engine asked for it, so the portfolio hoists the generation out of the
/// race — it runs once, unsliced, under its own controller, instead of
/// twice at half speed inside two slices. \returns true when it proved
/// Safe (with \p Out filled in).
bool runWholeProgramProbe(const Program &P, SmtSolver &Solver,
                          const EngineOptions &Opts, ResourceController &RC,
                          EngineResult &Out) {
  if (Opts.Refiner == RefinerKind::PathFormula)
    return false; // No synthesis backend configured for this job.
  // The probe's searches share a learner across template levels (the
  // escalation ladder re-derives many of the same combos), local to the
  // probe unless the caller wired a persistent one.
  SynthLearner ProbeLearner;
  PathInvOptions PIOpts = Opts.PathInv;
  if (!PIOpts.Synth.Learner)
    PIOpts.Synth.Learner = &ProbeLearner;
  PathInvResult Whole;
  {
    ResourceScope Scope(RC);
    Whole = Opts.Refiner == RefinerKind::PathInvariantIntervals
                ? generateIntervalInvariants(P, Solver)
                : generatePathInvariants(P, Solver, PIOpts);
  }
  Out.Stats.LpChecks += Whole.LpChecks;
  Out.Stats.TemplateLevelsTried += Whole.LevelsTried;
  Out.Stats.SynthNogoods += Whole.Learn.Nogoods;
  Out.Stats.SynthCombosDeduped += Whole.Learn.CombosDeduped;
  Out.Stats.SynthLemmasReused += Whole.Learn.LemmasReused;
  Out.Stats.SynthCuts += Whole.Learn.Cuts;
  if (!Whole.Found)
    return false;
  std::vector<std::pair<LocId, const Term *>> Localized;
  Whole.Map.collectLocalized(Localized);
  for (const auto &[Loc, Pred] : Localized)
    Out.Predicates.add(Loc, Pred);
  Out.Verdict = EngineResult::Verdict::Safe;
  Out.Invariants = Whole.Map;
  Out.HasInvariants = true;
  Out.Note = "proved by whole-program invariant map";
  return true;
}

/// Time-sliced round-robin race of CEGAR vs PDR. The first lane to
/// return a definitive verdict wins and the loser is sticky-cancelled;
/// a lane that returns Unknown without being slice-paused is genuinely
/// done (exhausted or stuck) and the other lane inherits the whole
/// machine. Exhaustion is never a verdict: when both lanes end Unknown,
/// the result attributes each engine's reason. Between the first and
/// second rounds the shared whole-program synthesis probe runs once (see
/// runWholeProgramProbe) — after the fine-grained opening round has
/// already caught trivially Safe and quickly refutable programs.
EngineResult runPortfolio(const Program &P, SmtSolver &Solver,
                          const EngineOptions &Opts) {
  TermManager &TM = P.termManager();
  auto Probe = [&TM]() -> uint64_t {
    return static_cast<uint64_t>(TM.arenaBytes()) + bigIntHeapBytes();
  };

  Lane Cegar(EngineKind::Cegar, Opts.Limits);
  Lane Pdr(EngineKind::Pdr, Opts.Limits);
  for (Lane *L : {&Cegar, &Pdr}) {
    L->RC.setMemoryProbe(Probe);
    L->RC.start();
    // Construct under the lane's scope: backend constructors may already
    // do governed work (the CEGAR ARG asserts its root labelling state).
    ResourceScope Scope(L->RC);
    EngineOptions LaneOpts = Opts;
    LaneOpts.Engine = L->Kind;
    L->Eng = makeEngine(L->Kind, P, Solver, LaneOpts);
  }

  // Slices start fine-grained so short jobs decide within one or two
  // rounds, then double every round to amortize the round-robin switching
  // on long jobs. Growth is uncapped on purpose: an engine step that is
  // atomic under the controller (a single refinement synthesis, say) can
  // exceed any fixed cap, and a capped slice would then redo that step
  // every round forever.
  double Slice = std::max(0.001, Opts.PortfolioSliceSeconds);
  bool ProbePending = Opts.PortfolioProbe;

  for (;;) {
    for (Lane *L : {&Cegar, &Pdr}) {
      if (L->Done)
        continue;
      Lane *Other = L == &Cegar ? &Pdr : &Cegar;
      // Once the other lane is out of the race, this one gets the rest
      // of the job budget unsliced.
      if (!Other->Done)
        L->RC.beginSlice(Slice);
      {
        ResourceScope Scope(L->RC);
        L->Last = L->Eng->run();
      }
      bool Paused = L->RC.slicePaused();
      L->RC.endSlice();
      if (L->Last.Verdict != EngineResult::Verdict::Unknown) {
        Lane *Winner = L;
        Lane *Loser = Other;
        std::string Extra;
        // Certificate preference: before settling on a Safe verdict that
        // carries no validated invariant map, give the trailing lane the
        // slice it was about to get anyway. If it finishes Safe *with* a
        // validated certificate, that lane's result is strictly more
        // useful (the map is an independently checkable proof artifact);
        // a disagreeing or still-running trailer changes nothing.
        if (L->Last.Verdict == EngineResult::Verdict::Safe &&
            !L->Last.HasInvariants && !Other->Done) {
          Other->RC.beginSlice(Slice);
          {
            ResourceScope Scope(Other->RC);
            Other->Last = Other->Eng->run();
          }
          Other->RC.endSlice();
          if (Other->Last.Verdict == EngineResult::Verdict::Safe &&
              Other->Last.HasInvariants) {
            Winner = Other;
            Loser = L;
            Extra = " (validated certificate preferred)";
          }
        }
        // Definitive verdict: sticky-cancel the loser and report.
        Loser->RC.cancel();
        finalizeEngineResult(Winner->Last, Winner->RC);
        std::string Won = std::string("portfolio: ") +
                          Winner->Eng->name() + " won the race" + Extra;
        Winner->Last.Note = Winner->Last.Note.empty()
                                ? Won
                                : Winner->Last.Note + "; " + Won;
        return Winner->Last;
      }
      if (!Paused) {
        // Genuine Unknown (resources out or refinement stuck), not a
        // slice pause: this lane is finished.
        L->Done = true;
        finalizeEngineResult(L->Last, L->RC);
      }
    }
    if (Cegar.Done && Pdr.Done)
      break;
    if (ProbePending) {
      ProbePending = false;
      ResourceController ProbeRC(Opts.Limits);
      ProbeRC.setMemoryProbe(Probe);
      ProbeRC.start();
      EngineResult ProbeResult;
      if (runWholeProgramProbe(P, Solver, Opts, ProbeRC, ProbeResult)) {
        Cegar.RC.cancel();
        Pdr.RC.cancel();
        finalizeEngineResult(ProbeResult, ProbeRC);
        ProbeResult.Stats.PeakMemoryBytes = std::max(
            {ProbeResult.Stats.PeakMemoryBytes, Cegar.RC.peakMemoryBytes(),
             Pdr.RC.peakMemoryBytes()});
        ProbeResult.Note += "; portfolio: shared synthesis probe won the race";
        return ProbeResult;
      }
      // No proof within the probe's budgets: the race decides. Nothing to
      // roll back — the probe ran under its own controller and scope.
    }
    Slice *= 2;
  }

  // Both lanes exhausted or stuck. Never a verdict — report Unknown with
  // per-engine attribution so the caller can see who ran out of what.
  EngineResult Result;
  Result.Verdict = EngineResult::Verdict::Unknown;
  auto describe = [](const Lane &L) -> std::string {
    if (!L.Last.UnknownReason.empty())
      return L.Last.UnknownReason;
    return L.Last.Note.empty() ? std::string("unknown") : L.Last.Note;
  };
  Result.Note = std::string("portfolio exhausted: cegar: ") +
                describe(Cegar) + "; pdr: " + describe(Pdr);
  Result.UnknownReason = !Cegar.Last.UnknownReason.empty()
                             ? Cegar.Last.UnknownReason
                             : Pdr.Last.UnknownReason;
  // Combined stats: the CEGAR lane's counters are the base (the PDR
  // fields are zero there) with the PDR lane's frame counters grafted on.
  Result.Stats = Cegar.Last.Stats;
  const EngineStats &PS = Pdr.Last.Stats;
  Result.Stats.PdrFrames = PS.PdrFrames;
  Result.Stats.PdrObligations = PS.PdrObligations;
  Result.Stats.PdrClausesLearned = PS.PdrClausesLearned;
  Result.Stats.PdrClausesPushed = PS.PdrClausesPushed;
  Result.Stats.PdrGenDroppedLits = PS.PdrGenDroppedLits;
  Result.Stats.PdrFrameQueries = PS.PdrFrameQueries;
  Result.Stats.PdrFacadeQueries = PS.PdrFacadeQueries;
  Result.Stats.PdrCexCandidates = PS.PdrCexCandidates;
  Result.Stats.Resources.PdrObligations = PS.Resources.PdrObligations;
  Result.Stats.PeakMemoryBytes =
      std::max(Result.Stats.PeakMemoryBytes, PS.PeakMemoryBytes);
  Result.Predicates = Cegar.Last.Predicates;
  return Result;
}

} // namespace

EngineResult pathinv::runEngine(const Program &P, SmtSolver &Solver,
                                const EngineOptions &Opts) {
  switch (Opts.Engine) {
  case EngineKind::Cegar:
    return verify(P, Solver, Opts);
  case EngineKind::Pdr:
    return verifyPdr(P, Solver, Opts);
  case EngineKind::Portfolio:
    return runPortfolio(P, Solver, Opts);
  }
  return verify(P, Solver, Opts);
}
