//===- core/Verifier.h - Public verification facade ------------*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The library's front door: parse a PIL procedure, lower it to a
/// transition system, and run the path-invariant CEGAR engine.
///
/// Minimal usage:
/// \code
///   pathinv::Verifier V;
///   auto R = V.verifySource("proc f(n) { assert(n == n); }");
///   if (R && R.get().Verdict == pathinv::EngineResult::Verdict::Safe)
///     ...
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_CORE_VERIFIER_H
#define PATHINV_CORE_VERIFIER_H

#include "cegar/Engine.h"
#include "lang/Lower.h"

#include <memory>

namespace pathinv {

class SmtSolver;

/// One verification context: owns the term manager and solver state,
/// which are shared (and their caches kept warm) across queries.
class Verifier {
public:
  explicit Verifier(EngineOptions Opts = {});
  ~Verifier();
  Verifier(const Verifier &) = delete;
  Verifier &operator=(const Verifier &) = delete;

  /// Parses, lowers, and verifies a PIL procedure.
  Expected<EngineResult> verifySource(std::string_view PilSource);

  /// Verifies an already-built transition system. The program must have
  /// been built against termManager().
  EngineResult verifyProgram(const Program &P);

  /// Parses and lowers without verifying (for callers that want the CFG).
  Expected<Program> loadSource(std::string_view PilSource);

  TermManager &termManager() { return *TM; }
  SmtSolver &solver() { return *Solver; }
  const EngineOptions &options() const { return Opts; }
  EngineOptions &options() { return Opts; }

private:
  std::unique_ptr<TermManager> TM;
  std::unique_ptr<SmtSolver> Solver;
  EngineOptions Opts;
};

/// Renders an engine result as a short human-readable report.
std::string formatResult(const Program &P, const EngineResult &R);

} // namespace pathinv

#endif // PATHINV_CORE_VERIFIER_H
