//===- core/Verifier.h - Public verification facade ------------*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The library's front door: parse a PIL procedure, lower it to a
/// transition system, and run the path-invariant CEGAR engine.
///
/// Minimal usage:
/// \code
///   pathinv::Verifier V;
///   auto R = V.verifySource("proc f(n) { assert(n == n); }");
///   if (R && R.get().Verdict == pathinv::EngineResult::Verdict::Safe)
///     ...
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_CORE_VERIFIER_H
#define PATHINV_CORE_VERIFIER_H

#include "cegar/Engine.h"
#include "lang/Lower.h"

#include <memory>

namespace pathinv {

class SmtSolver;
namespace smt {
class SolverContext;
}

/// One verification context: owns the term manager and solver state,
/// which are shared (and their caches kept warm) across queries.
class Verifier {
public:
  explicit Verifier(EngineOptions Opts = {});
  ~Verifier();
  Verifier(const Verifier &) = delete;
  Verifier &operator=(const Verifier &) = delete;

  /// Parses, lowers, and verifies a PIL procedure.
  Expected<EngineResult> verifySource(std::string_view PilSource);

  /// Verifies an already-built transition system. The program must have
  /// been built against termManager().
  EngineResult verifyProgram(const Program &P);

  /// Parses and lowers without verifying (for callers that want the CFG).
  Expected<Program> loadSource(std::string_view PilSource);

  TermManager &termManager() { return *TM; }
  SmtSolver &solver() { return *Solver; }
  /// The incremental context behind solver(): push/pop scopes, persistent
  /// assertions, assumption-based checks (smt/SolverContext.h). Assertions
  /// made here are honored (and cache-keyed) by the one-shot façade
  /// queries routed through solver(); the engine's ground reachability
  /// and path-feasibility batches run on their own private contexts and
  /// do not see them.
  smt::SolverContext &solverContext();
  const EngineOptions &options() const { return Opts; }
  EngineOptions &options() { return Opts; }

  /// Structured statistics of the solver layer (the engine layer's stats
  /// live in EngineResult::Stats).
  struct SolverLayerStats {
    // Façade (one-shot queries).
    uint64_t SmtQueries = 0;
    uint64_t SmtCacheHits = 0;
    // Context layer.
    uint64_t ContextChecks = 0;
    uint64_t ConjunctionChecks = 0;
    uint64_t LazyChecks = 0;
    uint64_t TheoryChecks = 0;
    uint64_t Pushes = 0;
    uint64_t Pops = 0;
    // Theory base tableau.
    uint64_t BaseReuses = 0;
    uint64_t BaseRebuilds = 0;
    // Scoped branch-and-bound (integer/disequality splits served on the
    // cached tableau) vs. scratch fallbacks. ScratchFallbacks creeping up
    // means split-requiring queries are losing incrementality again.
    uint64_t BnbNodes = 0;
    uint64_t BnbRepairPivots = 0;
    uint64_t BnbLemmas = 0;
    uint64_t ScratchFallbacks = 0;
    /// Distilled cut rows installed on the cached base tableau.
    uint64_t CutRows = 0;
    // CDCL core.
    uint64_t SatConflicts = 0;
    uint64_t SatDecisions = 0;
    uint64_t SatPropagations = 0;
    // Learned-clause garbage collection.
    uint64_t LearnedPurges = 0;
    uint64_t ClausesPurged = 0;
    uint64_t RedundantClauses = 0;
  };
  SolverLayerStats solverStats() const;

private:
  std::unique_ptr<TermManager> TM;
  std::unique_ptr<SmtSolver> Solver;
  EngineOptions Opts;
};

/// Renders the solver-layer statistics as a short human-readable block.
std::string formatSolverStats(const Verifier::SolverLayerStats &S);

/// Renders an engine result as a short human-readable report.
std::string formatResult(const Program &P, const EngineResult &R);

} // namespace pathinv

#endif // PATHINV_CORE_VERIFIER_H
