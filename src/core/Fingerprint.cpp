//===- core/Fingerprint.cpp - Deterministic program fingerprints ----------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Fingerprint.h"

#include "logic/Term.h"
#include "program/Program.h"

#include <algorithm>
#include <cstdio>
#include <vector>

using namespace pathinv;

namespace {

/// Two FNV-1a 64 streams with distinct offset bases fed the same bytes.
/// Not cryptographic — collisions cost a recomputation, never a wrong
/// answer (every cache hit is revalidated; see Fingerprint.h).
struct Hasher {
  uint64_t Hi = 0xcbf29ce484222325ULL;
  uint64_t Lo = 0x9e3779b97f4a7c15ULL;

  void bytes(const char *Data, size_t Len) {
    for (size_t K = 0; K < Len; ++K) {
      unsigned char C = static_cast<unsigned char>(Data[K]);
      Hi = (Hi ^ C) * 0x100000001b3ULL;
      Lo = (Lo ^ C) * 0x00000100000001b3ULL;
      Lo ^= Lo >> 29; // Extra avalanche keeps the streams independent.
    }
  }
  void str(const std::string &S) {
    u64(S.size()); // Length-prefix so "ab","c" != "a","bc".
    bytes(S.data(), S.size());
  }
  void u64(uint64_t V) {
    char Buf[8];
    for (int K = 0; K < 8; ++K)
      Buf[K] = static_cast<char>((V >> (8 * K)) & 0xff);
    bytes(Buf, 8);
  }
};

/// Renders a term for hashing, independent of the TermManager that interned
/// it. The regular printer is NOT suitable here: term construction sorts
/// commutative operand lists (And/Or/Add/Eq/Mul) by interned term id, and
/// ids depend on what else the arena has interned — the same source loaded
/// into a "warm" manager prints `a && b` where a fresh one prints `b && a`.
/// A cache key must be a pure function of program structure, so this
/// renderer sorts commutative operands by their own rendered strings
/// instead. Non-commutative kinds keep operand order (it is meaningful).
std::string canonicalRender(const Term *T) {
  std::string Out;
  Out += '(';
  Out += termKindName(T->kind());
  switch (T->kind()) {
  case TermKind::IntConst:
    Out += ' ';
    Out += T->value().toString();
    break;
  case TermKind::Var:
    Out += ' ';
    Out += T->name();
    Out += ':';
    Out += std::to_string(static_cast<int>(T->sort()));
    break;
  case TermKind::Apply:
    Out += ' ';
    Out += T->name();
    break;
  default:
    break;
  }
  bool Commutative = T->kind() == TermKind::And || T->kind() == TermKind::Or ||
                     T->kind() == TermKind::Add || T->kind() == TermKind::Mul ||
                     T->kind() == TermKind::Eq;
  std::vector<std::string> Ops;
  Ops.reserve(T->operands().size());
  for (const Term *Op : T->operands())
    Ops.push_back(canonicalRender(Op));
  if (Commutative)
    std::sort(Ops.begin(), Ops.end());
  for (const std::string &Op : Ops) {
    Out += ' ';
    Out += Op;
  }
  Out += ')';
  return Out;
}

} // namespace

std::string Fingerprint::hex() const {
  char Buf[33];
  std::snprintf(Buf, sizeof(Buf), "%016llx%016llx",
                static_cast<unsigned long long>(Hi),
                static_cast<unsigned long long>(Lo));
  return Buf;
}

Fingerprint pathinv::fingerprintProgram(const Program &P) {
  Hasher H;
  H.str("pathinv-fp-v1");
  // Variables: canonical render carries name plus sort tag (the name alone
  // would conflate an integer x with an array x). Sorted, because the
  // program's variable list is in first-interning order, which depends on
  // arena warmth, not on the source.
  std::vector<std::string> Vars;
  Vars.reserve(P.variables().size());
  for (const Term *Var : P.variables())
    Vars.push_back(canonicalRender(Var));
  std::sort(Vars.begin(), Vars.end());
  H.u64(Vars.size());
  for (const std::string &V : Vars)
    H.str(V);
  // Locations by dense index; names participate because certificates
  // resolve locations by name.
  H.u64(static_cast<uint64_t>(P.numLocations()));
  for (LocId Loc = 0; Loc < P.numLocations(); ++Loc)
    H.str(P.locationName(Loc));
  H.u64(static_cast<uint64_t>(P.entry()));
  H.u64(static_cast<uint64_t>(P.error()));
  // Transitions in program order (source order, stable): structure plus the
  // canonically rendered relation.
  H.u64(static_cast<uint64_t>(P.numTransitions()));
  for (const Transition &T : P.transitions()) {
    H.u64(static_cast<uint64_t>(T.From));
    H.u64(static_cast<uint64_t>(T.To));
    H.str(canonicalRender(T.Rel));
  }
  return Fingerprint{H.Hi, H.Lo};
}
