//===- core/Engine.h - Verification engine abstraction ----------*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The engine abstraction layered above the concrete verification
/// backends. A VerificationEngine owns the full lifecycle of one job on
/// one program: construct with the program/solver/options, then run()
/// until a verdict or exhaustion. Engines must be *resumable*: when the
/// active ResourceController pauses them mid-run (a portfolio time slice,
/// see ResourceController::beginSlice), run() returns Unknown with the
/// controller in the slicePaused state, and a later run() call continues
/// from the retained internal state instead of starting over.
///
/// Two backends implement the interface — the CEGAR+path-invariants loop
/// (cegar/Engine.h) and the PDR/IC3 clause-frame engine (pdr/Pdr.h) —
/// and runEngine() dispatches between them or races both in portfolio
/// mode: time-sliced round-robin under two independent controllers, with
/// sticky cancellation of the loser the moment either lane returns a
/// definitive verdict. Exhaustion is never a verdict: a portfolio whose
/// lanes both exhaust reports Unknown with per-engine reason attribution.
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_CORE_ENGINE_H
#define PATHINV_CORE_ENGINE_H

#include "cegar/AbstractReach.h"
#include "cegar/Refiner.h"
#include "core/Resource.h"
#include "interp/Interpreter.h"
#include "synth/InvariantMap.h"

#include <memory>
#include <string>

namespace pathinv {

/// The verification backends selectable per job.
enum class EngineKind : uint8_t {
  Cegar,     ///< CEGAR + path-invariant synthesis (the paper's engine).
  Pdr,       ///< IC3/PDR clause frames over the transition relation.
  Portfolio, ///< Race both engines, first definitive verdict wins.
};

/// Machine-readable engine name ("cegar", "pdr", "portfolio").
const char *engineKindName(EngineKind Kind);

/// Parses an --engine= value. \returns false on an unknown name.
bool parseEngineKind(const std::string &Name, EngineKind &Out);

/// Engine configuration (shared across backends; CEGAR-specific knobs are
/// ignored by PDR and vice versa).
struct EngineOptions {
  /// Which backend runs the job (or Portfolio to race them).
  EngineKind Engine = EngineKind::Cegar;
  RefinerKind Refiner = RefinerKind::PathInvariant;
  uint64_t MaxRefinements = 40;
  ReachOptions Reach;
  PathInvOptions PathInv;
  /// Replay bug witnesses concretely before reporting Unsafe.
  bool ValidateWitness = true;
  /// Export a checkable invariant-map certificate from CEGAR ARG proofs
  /// (PDR fixpoints and whole-program escalations always carry one). The
  /// map is read off the proof graph and independently validated with
  /// checkInvariantMap before it is attached; when the read-off or the
  /// validation fails the Safe verdict stands without a certificate.
  bool ExportCertificate = true;
  /// Portfolio round-robin slice length for the first round; later rounds
  /// double it without bound so short jobs interleave finely while long
  /// jobs amortize the switch cost (and no atomic engine step can outgrow
  /// every slice and livelock).
  double PortfolioSliceSeconds = 0.05;
  /// After the first portfolio round, run one shared whole-program
  /// invariant synthesis probe before resuming the race. Both backends
  /// escalate to this exact generation individually; hoisting it into the
  /// portfolio runs it once, unsliced, instead of letting each lane grind
  /// the same search at half speed. Disable to race the bare engines.
  bool PortfolioProbe = true;
  /// Resource governance: wall-clock deadline, memory ceiling, per-layer
  /// step budgets. All zero (the default) means unlimited. Exhaustion
  /// surfaces as Verdict::Unknown with EngineResult::UnknownReason set —
  /// never as a wrong verdict, a crash, or an unusable solver. In
  /// portfolio mode each lane gets its own controller carrying the full
  /// job limits (the wall deadline is shared in real time because the
  /// lanes interleave on one thread).
  ResourceLimits Limits;
};

/// Aggregate statistics of one verification run.
struct EngineStats {
  uint64_t Refinements = 0;
  uint64_t NodesExpanded = 0;
  uint64_t EntailmentQueries = 0;
  /// Entailment queries served incrementally (assumption flips on an
  /// asserted post-image) during abstract reachability.
  uint64_t AssumptionQueries = 0;
  /// Entailment queries skipped outright because the post-image's
  /// feasibility model already witnessed the answer.
  uint64_t ModelFilteredQueries = 0;
  // ARG engine only: incremental reuse vs. fresh work at the engine level.
  /// Expanded nodes retained across refinements (summed per refinement) —
  /// exploration the restart engine would redo.
  uint64_t NodesReused = 0;
  /// Nodes removed by subtree-scoped pruning (refinements and stale-path
  /// reconciliations).
  uint64_t NodesPruned = 0;
  /// Covering candidate comparisons, and how many nodes ended covered.
  uint64_t CoverChecks = 0;
  uint64_t NodesCovered = 0;
  /// Covered nodes re-pointed at a strictly more general coverer once one
  /// appeared (coverer rotation keeps the pruned frontier maximal).
  uint64_t CoverRotations = 0;
  /// Stale leaves relabelled under a grown precision that an existing
  /// expanded node then covered (expansion saved).
  uint64_t ForcedCovers = 0;
  /// Labelling batches replayed from an identical memoized batch at the
  /// same location (one assumption-flip group per location/post pair per
  /// precision state) — settle sweeps and converged loop unrollings.
  uint64_t RelabelsBatched = 0;
  // ARG engine only: the run-lifetime solver context behind reachability
  // (its checks, and the learned-clause garbage collection keeping it
  // bounded). The facade solver's stats live in Verifier::solverStats().
  uint64_t ReachContextChecks = 0;
  uint64_t ReachLearnedPurges = 0;
  uint64_t ReachClausesPurged = 0;
  uint64_t ReachRedundantClauses = 0;
  /// Branch-and-bound work inside the reach context's theory solver, and
  /// how often a query still had to abandon the cached tableau. A rising
  /// fallback count is a regression in incrementality.
  uint64_t ReachBnbNodes = 0;
  uint64_t ReachScratchFallbacks = 0;
  /// Path-formula conjuncts found already asserted from the previous
  /// iteration's path (prefix reuse) vs. conjuncts freshly asserted.
  uint64_t PathConjunctsReused = 0;
  uint64_t PathConjunctsAsserted = 0;
  uint64_t LpChecks = 0;
  uint64_t Fallbacks = 0;
  uint64_t TemplateLevelsTried = 0;
  // Conflict learning inside the synthesis search (the engine owns one
  // persistent SynthLearner; these are its lifetime totals, so reuse
  // across template levels, Farkas scopes, and restarts is visible here).
  uint64_t SynthNogoods = 0;
  uint64_t SynthCombosDeduped = 0;
  uint64_t SynthLemmasReused = 0;
  uint64_t SynthCuts = 0;
  size_t FinalPredicates = 0;
  // PDR engine only: clause-frame lifecycle counters.
  /// Frames opened (frontier level reached + 1).
  uint64_t PdrFrames = 0;
  /// Proof obligations processed.
  uint64_t PdrObligations = 0;
  /// Cubes blocked into frames, and how many were pushed up a level by
  /// the propagation phase.
  uint64_t PdrClausesLearned = 0;
  uint64_t PdrClausesPushed = 0;
  /// Literals dropped by unsat-core generalization (larger is better:
  /// more general clauses block more states).
  uint64_t PdrGenDroppedLits = 0;
  /// Incremental frame queries (assumption batches on the persistent
  /// context) vs. one-shot facade queries (store-carrying transitions).
  uint64_t PdrFrameQueries = 0;
  uint64_t PdrFacadeQueries = 0;
  /// Abstract counterexample candidates reaching level 0 (each triggers a
  /// concrete path check, then either Unsafe or refinement).
  uint64_t PdrCexCandidates = 0;
  // Resource governance: steps actually spent per budgeted layer (these
  // are the partial stats that survive exhaustion), the peak tracked heap
  // footprint, and how often the escalation ladder retried a
  // budget-exhausted refinement with the cheaper backend.
  ResourceSpent Resources;
  uint64_t PeakMemoryBytes = 0;
  uint64_t EscalationRetries = 0;
};

/// Verdict of a verification run.
struct EngineResult {
  enum class Verdict : uint8_t { Safe, Unsafe, Unknown } Verdict =
      Verdict::Unknown;
  /// For Unsafe: the feasible error path and a replay of it.
  Path Witness;
  ReplayResult Replay;
  bool WitnessReplayed = false;
  /// The abstraction that proved safety (or the state at exhaustion).
  PredicateMap Predicates;
  /// For Safe verdicts backed by an explicit invariant map (PDR fixpoint,
  /// whole-program escalation): the inductive map itself, independently
  /// validated with checkInvariantMap before the verdict was reported.
  InvariantMap Invariants;
  bool HasInvariants = false;
  EngineStats Stats;
  std::string Note; ///< Reason for Unknown verdicts (human-readable).
  /// Machine-readable exhaustion reason when the ResourceController
  /// tripped: one of "deadline", "memory", "sat_conflicts", "pivots",
  /// "bnb_nodes", "synth_combos", "arg_expansions", "refinements",
  /// "pdr_obligations", "cancelled". Empty when the verdict is not
  /// resource-related.
  std::string UnknownReason;
};

/// One verification backend bound to one job. Engines hold their working
/// state (ARG / clause frames, solver contexts, precision) across run()
/// calls so a slice-paused job resumes instead of restarting.
class VerificationEngine {
public:
  virtual ~VerificationEngine() = default;

  /// Machine-readable backend name ("cegar", "pdr").
  virtual const char *name() const = 0;

  /// Runs (or resumes) the job until verdict, exhaustion, or slice pause.
  /// Charges steps against the thread's active ResourceController; when
  /// that controller reports slicePaused() after run() returns, the
  /// result is a provisional Unknown and a later run() continues.
  virtual EngineResult run() = 0;
};

/// Stamps the governed-run epilogue onto \p Result: resource spend, peak
/// memory, and — only for a genuinely exhausted (not slice-paused) run
/// that ends Unknown — the machine-readable reason.
inline void finalizeEngineResult(EngineResult &Result,
                                 const ResourceController &RC) {
  Result.Stats.Resources = RC.spent();
  Result.Stats.PeakMemoryBytes = RC.peakMemoryBytes();
  if (Result.Verdict == EngineResult::Verdict::Unknown && RC.exhausted() &&
      !RC.slicePaused())
    Result.UnknownReason = resourceReasonName(RC.reason());
}

/// Constructs the backend \p Kind (Cegar or Pdr; Portfolio is a driver,
/// not a backend — runEngine handles it) bound to \p P / \p Solver.
std::unique_ptr<VerificationEngine>
makeEngine(EngineKind Kind, const Program &P, SmtSolver &Solver,
           const EngineOptions &Opts);

/// Verifies \p P with the backend Opts.Engine selects, installing a
/// ResourceController per job (per lane in portfolio mode) and
/// finalizing stats/reasons. This is the single entry point the CLI,
/// bench harness, and tests share.
EngineResult runEngine(const Program &P, SmtSolver &Solver,
                       const EngineOptions &Opts = {});

} // namespace pathinv

#endif // PATHINV_CORE_ENGINE_H
