//===- core/Resource.cpp - Resource governance implementation -------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Resource.h"

#include "support/FaultInject.h"

using namespace pathinv;

const char *pathinv::resourceReasonName(ResourceKind Kind) {
  switch (Kind) {
  case ResourceKind::Deadline:
    return "deadline";
  case ResourceKind::Memory:
    return "memory";
  case ResourceKind::SatConflicts:
    return "sat_conflicts";
  case ResourceKind::Pivots:
    return "pivots";
  case ResourceKind::BnbNodes:
    return "bnb_nodes";
  case ResourceKind::SynthCombos:
    return "synth_combos";
  case ResourceKind::ArgExpansions:
    return "arg_expansions";
  case ResourceKind::Refinements:
    return "refinements";
  case ResourceKind::PdrObligations:
    return "pdr_obligations";
  case ResourceKind::Cancelled:
    return "cancelled";
  }
  return "unknown";
}

namespace {
thread_local ResourceController *ActiveController = nullptr;
} // namespace

ResourceController *ResourceController::active() { return ActiveController; }

void ResourceController::setActive(ResourceController *RC) {
  ActiveController = RC;
}

void ResourceController::start() {
  if (Limits.TimeoutSeconds > 0) {
    Deadline = std::chrono::steady_clock::now() +
               std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double>(Limits.TimeoutSeconds));
    DeadlineArmed = true;
  }
}

void ResourceController::cancel(ResourceKind Reason) {
  if (Tripped && !SlicePaused)
    return; // First real reason wins.
  // A real cancellation converts a transient slice pause into a sticky
  // trip (the portfolio cancelling the losing lane mid-pause).
  SlicePaused = false;
  Tripped = true;
  TripReason = Reason;
}

void ResourceController::beginSlice(double Seconds) {
  SliceDeadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(Seconds));
  SliceArmed = true;
  // Force the first charge of the slice through a full poll so a slice
  // shorter than one amortization window still gets noticed.
  ChargesSincePoll = PollInterval;
}

void ResourceController::endSlice() {
  SliceArmed = false;
  if (SlicePaused) {
    SlicePaused = false;
    Tripped = false;
  }
}

void ResourceController::bump(ResourceKind Kind, uint64_t Delta) {
  switch (Kind) {
  case ResourceKind::SatConflicts:
    Used.SatConflicts += Delta;
    break;
  case ResourceKind::Pivots:
    Used.Pivots += Delta;
    break;
  case ResourceKind::BnbNodes:
    Used.BnbNodes += Delta;
    break;
  case ResourceKind::SynthCombos:
    Used.SynthCombos += Delta;
    break;
  case ResourceKind::ArgExpansions:
    Used.ArgExpansions += Delta;
    break;
  case ResourceKind::Refinements:
    Used.Refinements += Delta;
    break;
  case ResourceKind::PdrObligations:
    Used.PdrObligations += Delta;
    break;
  default:
    break; // Deadline/Memory/Cancelled are polled, not stepped.
  }
}

bool ResourceController::checkBudget(ResourceKind Kind) {
  uint64_t Limit = 0, Spent = 0;
  switch (Kind) {
  case ResourceKind::SatConflicts:
    Limit = Limits.SatConflicts;
    Spent = Used.SatConflicts;
    break;
  case ResourceKind::Pivots:
    Limit = Limits.Pivots;
    Spent = Used.Pivots;
    break;
  case ResourceKind::BnbNodes:
    Limit = Limits.BnbNodes;
    Spent = Used.BnbNodes;
    break;
  case ResourceKind::SynthCombos:
    Limit = Limits.SynthCombos;
    Spent = Used.SynthCombos;
    break;
  case ResourceKind::ArgExpansions:
    Limit = Limits.ArgExpansions;
    Spent = Used.ArgExpansions;
    break;
  case ResourceKind::Refinements:
    Limit = Limits.Refinements;
    Spent = Used.Refinements;
    break;
  case ResourceKind::PdrObligations:
    Limit = Limits.PdrObligations;
    Spent = Used.PdrObligations;
    break;
  default:
    return true;
  }
  if (Limit != 0 && Spent >= Limit) {
    cancel(Kind);
    return false;
  }
  return true;
}

bool ResourceController::pollNow() {
  ChargesSincePoll = 0;
  if (Tripped)
    return false;
  // External cancellation (the one cross-thread channel; see
  // ResourceLimits::CancelFlag) outranks every other cause: the
  // supervisor asking for the job's death must not lose the race to a
  // budget trip reporting a softer reason.
  if (Limits.CancelFlag &&
      Limits.CancelFlag->load(std::memory_order_relaxed)) {
    cancel(ResourceKind::Cancelled);
    return false;
  }
#if defined(PATHINV_FAULT_INJECT)
  // The controller's poll is the "solver checkpoint" injection site: a
  // triggered fault here models a deadline arriving at an arbitrary
  // cooperative checkpoint deep in the stack.
  if (fault::shouldFail(fault::Site::SolverCheckpoint))
    cancel(ResourceKind::Deadline);
  // Memory-site faults (arena growth, BigInt promotion) fire in layers
  // that cannot see the controller; they park a pending flag we consume
  // at the next checkpoint.
  if (fault::consumePendingMemoryFault())
    cancel(ResourceKind::Memory);
  if (Tripped)
    return false;
#endif
  if (DeadlineArmed && std::chrono::steady_clock::now() >= Deadline) {
    cancel(ResourceKind::Deadline);
    return false;
  }
  if (MemoryProbe) {
    uint64_t Bytes = MemoryProbe();
    if (Bytes > PeakMemory)
      PeakMemory = Bytes;
    if (Limits.MemoryBytes != 0 && Bytes >= Limits.MemoryBytes) {
      cancel(ResourceKind::Memory);
      return false;
    }
  }
  // Re-check every step budget so a large amortized batch cannot overshoot
  // a limit by more than one poll interval.
  for (ResourceKind K :
       {ResourceKind::SatConflicts, ResourceKind::Pivots,
        ResourceKind::BnbNodes, ResourceKind::SynthCombos,
        ResourceKind::ArgExpansions, ResourceKind::Refinements,
        ResourceKind::PdrObligations})
    if (!checkBudget(K))
      return false;
  // The portfolio slice deadline is checked last: every real limit takes
  // precedence, so a pause is only reported when the job could otherwise
  // continue.
  if (SliceArmed && std::chrono::steady_clock::now() >= SliceDeadline) {
    Tripped = true;
    SlicePaused = true;
    return false;
  }
  return true;
}
