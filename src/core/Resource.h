//===- core/Resource.h - Resource governance for verification jobs -*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cooperative resource governance: one ResourceController per verification
/// job carries a wall-clock deadline, a soft memory ceiling, per-layer step
/// budgets, and a cancellation flag. Every long-running loop in the stack
/// (SAT conflicts, simplex pivots, branch-and-bound nodes, synthesis LP
/// checks, ARG expansions, refinement rounds) charges its steps through
/// resourceCharge(); when any limit trips, the charge call returns false and
/// the layer unwinds through its normal failure path — checked status
/// returns, never exceptions — leaving every solver object in a valid,
/// reusable state.
///
/// The controller is sticky: the first limit to trip records the exhaustion
/// reason, and every later charge fails immediately. The engine maps a
/// tripped controller to Verdict::Unknown with the machine-readable reason
/// (resourceReasonName()), partial stats, and the best-so-far invariant map.
/// Exhaustion is never a verdict.
///
/// Threading model: the active controller is installed per thread with a
/// ResourceScope RAII guard; resourceCharge() is a no-op returning true when
/// no controller is installed, so library code stays usable without one.
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_CORE_RESOURCE_H
#define PATHINV_CORE_RESOURCE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>

namespace pathinv {

/// The taxonomy of exhaustible resources. Doubles as the reason reported
/// when the corresponding limit trips first.
enum class ResourceKind : uint8_t {
  Deadline,       ///< Wall-clock deadline passed.
  Memory,         ///< Arena + BigInt heap bytes over the soft ceiling.
  SatConflicts,   ///< CDCL conflicts across all SAT solves.
  Pivots,         ///< Exact-rational simplex pivots.
  BnbNodes,       ///< Theory branch-and-bound nodes.
  SynthCombos,    ///< Synthesis LP feasibility checks.
  ArgExpansions,  ///< Abstract reachability node expansions.
  Refinements,    ///< CEGAR refinement rounds.
  PdrObligations, ///< PDR proof obligations processed.
  Cancelled,      ///< External cooperative cancellation.
};

/// Machine-readable reason string for \p Kind (e.g. "deadline", "pivots").
const char *resourceReasonName(ResourceKind Kind);

/// Per-job limits. Zero means unlimited for every field.
struct ResourceLimits {
  double TimeoutSeconds = 0;  ///< Wall-clock deadline from start().
  uint64_t MemoryBytes = 0;   ///< Soft ceiling on tracked heap bytes.
  uint64_t SatConflicts = 0;  ///< Total CDCL conflict budget.
  uint64_t Pivots = 0;        ///< Total simplex pivot budget.
  uint64_t BnbNodes = 0;      ///< Total branch-and-bound node budget.
  uint64_t SynthCombos = 0;   ///< Total synthesis LP-check budget.
  uint64_t ArgExpansions = 0; ///< Total ARG expansion budget.
  uint64_t Refinements = 0;   ///< Total refinement-round budget.
  uint64_t PdrObligations = 0; ///< Total PDR proof-obligation budget.

  /// Optional externally-owned cancellation flag, polled at every full
  /// poll. This is the ONE thread-safe channel into a controller: the
  /// controller itself is single-threaded by design (one job, one worker
  /// thread), but a supervisor on another thread may set this atomic to
  /// request cooperative cancellation — pathinvd's drain path cancels
  /// in-flight jobs this way. The flag is polled, never written, by the
  /// controller; it propagates into every controller constructed from
  /// these limits (portfolio lanes, the shared synthesis probe), so one
  /// store cancels the whole job tree. Not a "limit": ignored by
  /// unlimited().
  const std::atomic<bool> *CancelFlag = nullptr;

  /// \returns true when every field is zero (nothing to enforce).
  bool unlimited() const {
    return TimeoutSeconds == 0 && MemoryBytes == 0 && SatConflicts == 0 &&
           Pivots == 0 && BnbNodes == 0 && SynthCombos == 0 &&
           ArgExpansions == 0 && Refinements == 0 && PdrObligations == 0;
  }
};

/// Step counters mirroring the budget fields; filled by spent().
struct ResourceSpent {
  uint64_t SatConflicts = 0;
  uint64_t Pivots = 0;
  uint64_t BnbNodes = 0;
  uint64_t SynthCombos = 0;
  uint64_t ArgExpansions = 0;
  uint64_t Refinements = 0;
  uint64_t PdrObligations = 0;
};

/// Cooperative, sticky resource controller. Not thread-safe: one controller
/// governs one job on one thread (install with ResourceScope).
class ResourceController {
public:
  explicit ResourceController(const ResourceLimits &Limits = {})
      : Limits(Limits) {}

  /// Arms the wall-clock deadline relative to now. Charges before start()
  /// enforce step budgets but not the deadline.
  void start();

  /// Charges \p Delta steps of \p Kind. \returns true to proceed, false
  /// when a limit has tripped (now or earlier). Amortizes the deadline /
  /// memory / fault-injection poll to every PollInterval-th call, so the
  /// per-step cost is a counter bump and a branch.
  bool charge(ResourceKind Kind, uint64_t Delta = 1) {
    if (Tripped)
      return false;
    bump(Kind, Delta);
    if (++ChargesSincePoll >= PollInterval)
      return pollNow();
    return checkBudget(Kind);
  }

  /// Unamortized poll: deadline, memory probe, injected faults, budgets.
  /// \returns true to proceed.
  bool pollNow();

  /// Trips the controller with \p Reason (first reason wins). Safe to call
  /// from any layer; subsequent charges fail. A real cancellation
  /// overrides a transient slice pause (see beginSlice).
  void cancel(ResourceKind Reason = ResourceKind::Cancelled);

  /// Portfolio time-slicing: arms a transient deadline \p Seconds from
  /// now. When it passes, charges start failing exactly as on a real trip
  /// — every layer unwinds through its normal checked-status path — but
  /// the pause is NOT sticky: endSlice() rearms the controller and the
  /// engine may resume. Real limits always win over a slice pause: they
  /// are checked first, and cancel() overrides a pause.
  void beginSlice(double Seconds);
  /// Disarms the slice deadline and clears a slice-only pause. Real trips
  /// (deadline, budgets, cancellation) survive.
  void endSlice();
  /// \returns true while the controller is tripped only by the slice
  /// deadline — the engine was paused, not exhausted.
  bool slicePaused() const { return SlicePaused; }

  /// \returns true once any limit has tripped.
  bool exhausted() const { return Tripped; }

  /// The first reason that tripped. Meaningful only when exhausted().
  ResourceKind reason() const { return TripReason; }

  /// Installs a probe returning currently tracked heap bytes (arena +
  /// BigInt); polled when a memory ceiling is configured.
  void setMemoryProbe(std::function<uint64_t()> Probe) {
    MemoryProbe = std::move(Probe);
  }

  const ResourceLimits &limits() const { return Limits; }
  ResourceSpent spent() const { return Used; }

  /// Peak value the memory probe has returned, for stats reporting.
  uint64_t peakMemoryBytes() const { return PeakMemory; }

  /// The controller installed on this thread, or nullptr.
  static ResourceController *active();

  /// Number of steps between full polls in charge().
  static constexpr uint32_t PollInterval = 256;

private:
  friend class ResourceScope;
  static void setActive(ResourceController *RC);

  void bump(ResourceKind Kind, uint64_t Delta);
  bool checkBudget(ResourceKind Kind);

  ResourceLimits Limits;
  ResourceSpent Used;
  std::function<uint64_t()> MemoryProbe;
  std::chrono::steady_clock::time_point Deadline{};
  std::chrono::steady_clock::time_point SliceDeadline{};
  bool DeadlineArmed = false;
  bool SliceArmed = false;
  bool SlicePaused = false;
  bool Tripped = false;
  ResourceKind TripReason = ResourceKind::Cancelled;
  uint32_t ChargesSincePoll = 0;
  uint64_t PeakMemory = 0;
};

/// RAII installer: makes \p RC the thread's active controller for the
/// guard's lifetime, restoring the previous one on exit.
class ResourceScope {
public:
  explicit ResourceScope(ResourceController &RC)
      : Saved(ResourceController::active()) {
    ResourceController::setActive(&RC);
  }
  ~ResourceScope() { ResourceController::setActive(Saved); }
  ResourceScope(const ResourceScope &) = delete;
  ResourceScope &operator=(const ResourceScope &) = delete;

private:
  ResourceController *Saved;
};

/// Charges \p Delta steps of \p Kind against the thread's active
/// controller. \returns true to proceed (always true when no controller is
/// installed), false when the job's resources are exhausted.
inline bool resourceCharge(ResourceKind Kind, uint64_t Delta = 1) {
  ResourceController *RC = ResourceController::active();
  return !RC || RC->charge(Kind, Delta);
}

/// \returns true when the thread's active controller (if any) has tripped.
/// Cheaper than a charge; for layers that only need to notice exhaustion.
inline bool resourceExhausted() {
  ResourceController *RC = ResourceController::active();
  return RC && RC->exhausted();
}

} // namespace pathinv

#endif // PATHINV_CORE_RESOURCE_H
