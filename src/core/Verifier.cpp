//===- core/Verifier.cpp - Public verification facade ----------------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Verifier.h"

#include "smt/SmtSolver.h"

using namespace pathinv;

Verifier::Verifier(EngineOptions Opts)
    : TM(std::make_unique<TermManager>()),
      Solver(std::make_unique<SmtSolver>(*TM)), Opts(std::move(Opts)) {}

Verifier::~Verifier() = default;

Expected<Program> Verifier::loadSource(std::string_view PilSource) {
  return loadProgram(*TM, PilSource);
}

EngineResult Verifier::verifyProgram(const Program &P) {
  assert(&P.termManager() == TM.get() &&
         "program built against a foreign term manager");
  return verify(P, *Solver, Opts);
}

Expected<EngineResult> Verifier::verifySource(std::string_view PilSource) {
  Expected<Program> P = loadSource(PilSource);
  if (!P)
    return Expected<EngineResult>(P.error());
  return verifyProgram(P.get());
}

std::string pathinv::formatResult(const Program &, const EngineResult &R) {
  std::string Out;
  switch (R.Verdict) {
  case EngineResult::Verdict::Safe:
    Out = "SAFE";
    break;
  case EngineResult::Verdict::Unsafe:
    Out = "UNSAFE";
    break;
  case EngineResult::Verdict::Unknown:
    Out = "UNKNOWN (" + R.Note + ")";
    break;
  }
  Out += "\n  refinements:        " + std::to_string(R.Stats.Refinements);
  Out += "\n  nodes expanded:     " + std::to_string(R.Stats.NodesExpanded);
  Out += "\n  entailment queries: " +
         std::to_string(R.Stats.EntailmentQueries);
  Out += "\n  synthesis LPs:      " + std::to_string(R.Stats.LpChecks);
  Out += "\n  predicates:         " +
         std::to_string(R.Stats.FinalPredicates);
  if (R.Verdict == EngineResult::Verdict::Unsafe) {
    Out += "\n  witness steps:      " + std::to_string(R.Witness.size());
    Out += R.WitnessReplayed ? "\n  witness replayed:   yes"
                             : "\n  witness replayed:   no";
    if (R.WitnessReplayed && !R.Replay.States.empty()) {
      Out += "\n  witness input:     ";
      for (const auto &[Var, Value] : R.Replay.States.front().Scalars)
        Out += " " + Var->name() + "=" + Value.toString();
    }
  }
  Out += "\n";
  return Out;
}
