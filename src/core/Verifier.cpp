//===- core/Verifier.cpp - Public verification facade ----------------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Verifier.h"

#include "core/Engine.h"
#include "smt/SmtSolver.h"

using namespace pathinv;

Verifier::Verifier(EngineOptions Opts)
    : TM(std::make_unique<TermManager>()),
      Solver(std::make_unique<SmtSolver>(*TM)), Opts(std::move(Opts)) {}

Verifier::~Verifier() = default;

Expected<Program> Verifier::loadSource(std::string_view PilSource) {
  return loadProgram(*TM, PilSource);
}

smt::SolverContext &Verifier::solverContext() { return Solver->context(); }

Verifier::SolverLayerStats Verifier::solverStats() const {
  SolverLayerStats S;
  S.SmtQueries = Solver->numQueries();
  S.SmtCacheHits = Solver->numCacheHits();
  smt::ContextStats C = Solver->context().stats();
  S.ContextChecks = C.Checks;
  S.ConjunctionChecks = C.ConjunctionChecks;
  S.LazyChecks = C.LazyChecks;
  S.TheoryChecks = Solver->numTheoryChecks();
  S.Pushes = C.Pushes;
  S.Pops = C.Pops;
  S.BaseReuses = C.BaseReuses;
  S.BaseRebuilds = C.BaseRebuilds;
  S.BnbNodes = C.BnbNodes;
  S.BnbRepairPivots = C.BnbRepairPivots;
  S.BnbLemmas = C.BnbLemmas;
  S.ScratchFallbacks = C.ScratchFallbacks;
  S.CutRows = C.CutRows;
  S.SatConflicts = C.SatConflicts;
  S.SatDecisions = C.SatDecisions;
  S.SatPropagations = C.SatPropagations;
  S.LearnedPurges = C.LearnedPurges;
  S.ClausesPurged = C.ClausesPurged;
  S.RedundantClauses = C.RedundantClauses;
  return S;
}

std::string pathinv::formatSolverStats(const Verifier::SolverLayerStats &S) {
  std::string Out;
  Out += "solver layer:\n";
  Out += "  facade queries:     " + std::to_string(S.SmtQueries) +
         " (cache hits: " + std::to_string(S.SmtCacheHits) + ")\n";
  Out += "  context checks:     " + std::to_string(S.ContextChecks) +
         " (conjunction: " + std::to_string(S.ConjunctionChecks) +
         ", lazy: " + std::to_string(S.LazyChecks) + ")\n";
  Out += "  theory checks:      " + std::to_string(S.TheoryChecks) + "\n";
  Out += "  scopes:             push " + std::to_string(S.Pushes) +
         " / pop " + std::to_string(S.Pops) + "\n";
  Out += "  base tableau:       " + std::to_string(S.BaseReuses) +
         " reuses, " + std::to_string(S.BaseRebuilds) + " rebuilds\n";
  Out += "  theory b&b:         " + std::to_string(S.BnbNodes) +
         " nodes, " + std::to_string(S.BnbRepairPivots) +
         " repair pivots, " + std::to_string(S.BnbLemmas) +
         " bound lemmas, " + std::to_string(S.CutRows) + " cut rows, " +
         std::to_string(S.ScratchFallbacks) + " scratch fallbacks\n";
  Out += "  cdcl:               " + std::to_string(S.SatConflicts) +
         " conflicts, " + std::to_string(S.SatDecisions) + " decisions, " +
         std::to_string(S.SatPropagations) + " propagations\n";
  Out += "  clause gc:          " + std::to_string(S.LearnedPurges) +
         " purges, " + std::to_string(S.ClausesPurged) + " deleted, " +
         std::to_string(S.RedundantClauses) + " live\n";
  return Out;
}

EngineResult Verifier::verifyProgram(const Program &P) {
  assert(&P.termManager() == TM.get() &&
         "program built against a foreign term manager");
  return runEngine(P, *Solver, Opts);
}

Expected<EngineResult> Verifier::verifySource(std::string_view PilSource) {
  Expected<Program> P = loadSource(PilSource);
  if (!P)
    return Expected<EngineResult>(P.error());
  return verifyProgram(P.get());
}

std::string pathinv::formatResult(const Program &, const EngineResult &R) {
  std::string Out;
  switch (R.Verdict) {
  case EngineResult::Verdict::Safe:
    Out = "SAFE";
    break;
  case EngineResult::Verdict::Unsafe:
    Out = "UNSAFE";
    break;
  case EngineResult::Verdict::Unknown:
    Out = "UNKNOWN (" + R.Note + ")";
    break;
  }
  if (!R.UnknownReason.empty())
    Out += "\n  unknown reason:     " + R.UnknownReason;
  Out += "\n  refinements:        " + std::to_string(R.Stats.Refinements);
  Out += "\n  nodes expanded:     " + std::to_string(R.Stats.NodesExpanded);
  // The ARG engine's reuse/covering/context counters; the restart engine
  // has no persistent graph, so the lines would be meaningless zeros.
  if (R.Stats.ReachContextChecks != 0 || R.Stats.CoverChecks != 0 ||
      R.Stats.NodesReused != 0 || R.Stats.NodesPruned != 0) {
    Out += "\n  nodes reused:       " + std::to_string(R.Stats.NodesReused) +
           " (pruned: " + std::to_string(R.Stats.NodesPruned) +
           ", relabels batched: " + std::to_string(R.Stats.RelabelsBatched) +
           ")";
    Out += "\n  covering:           " +
           std::to_string(R.Stats.NodesCovered) + " covered / " +
           std::to_string(R.Stats.CoverChecks) + " checks (forced: " +
           std::to_string(R.Stats.ForcedCovers) + ", rotated: " +
           std::to_string(R.Stats.CoverRotations) + ")";
    Out += "\n  reach solver:       " +
           std::to_string(R.Stats.ReachContextChecks) + " checks, gc " +
           std::to_string(R.Stats.ReachLearnedPurges) + " purges / " +
           std::to_string(R.Stats.ReachClausesPurged) + " deleted / " +
           std::to_string(R.Stats.ReachRedundantClauses) + " live clauses";
    Out += "\n  reach theory b&b:   " +
           std::to_string(R.Stats.ReachBnbNodes) + " nodes, " +
           std::to_string(R.Stats.ReachScratchFallbacks) +
           " scratch fallbacks";
  }
  Out += "\n  entailment queries: " +
         std::to_string(R.Stats.EntailmentQueries) + " (incremental: " +
         std::to_string(R.Stats.AssumptionQueries) + ", model-filtered: " +
         std::to_string(R.Stats.ModelFilteredQueries) + ")";
  Out += "\n  path conjuncts:     " +
         std::to_string(R.Stats.PathConjunctsAsserted) + " asserted, " +
         std::to_string(R.Stats.PathConjunctsReused) + " reused";
  Out += "\n  synthesis LPs:      " + std::to_string(R.Stats.LpChecks);
  Out += "\n  synthesis learning: " + std::to_string(R.Stats.SynthNogoods) +
         " nogood prunes, " + std::to_string(R.Stats.SynthCombosDeduped) +
         " combos deduped, " + std::to_string(R.Stats.SynthLemmasReused) +
         " lemmas reused, " + std::to_string(R.Stats.SynthCuts) + " cuts";
  Out += "\n  predicates:         " +
         std::to_string(R.Stats.FinalPredicates);
  // PDR backend counters (zero unless the pdr or portfolio engine ran).
  if (R.Stats.PdrFrames != 0 || R.Stats.PdrObligations != 0) {
    Out += "\n  pdr frames:         " + std::to_string(R.Stats.PdrFrames) +
           " (clauses learned: " +
           std::to_string(R.Stats.PdrClausesLearned) + ", pushed: " +
           std::to_string(R.Stats.PdrClausesPushed) + ")";
    Out += "\n  pdr obligations:    " +
           std::to_string(R.Stats.PdrObligations) +
           " (cex candidates: " + std::to_string(R.Stats.PdrCexCandidates) +
           ", literals dropped: " +
           std::to_string(R.Stats.PdrGenDroppedLits) + ")";
    Out += "\n  pdr queries:        " +
           std::to_string(R.Stats.PdrFrameQueries) + " frame, " +
           std::to_string(R.Stats.PdrFacadeQueries) + " facade";
  }
  // Resource governance: what the run actually spent against its budgets.
  // Printed even on exhaustion — these are the partial stats the resource
  // model promises alongside an Unknown verdict.
  const ResourceSpent &RS = R.Stats.Resources;
  Out += "\n  resources spent:    " + std::to_string(RS.SatConflicts) +
         " conflicts, " + std::to_string(RS.Pivots) + " pivots, " +
         std::to_string(RS.BnbNodes) + " b&b nodes, " +
         std::to_string(RS.SynthCombos) + " synth combos";
  Out += "\n                      " + std::to_string(RS.ArgExpansions) +
         " expansions, " + std::to_string(RS.Refinements) +
         " refinements, peak memory " +
         std::to_string(R.Stats.PeakMemoryBytes / 1024) + " KiB";
  if (R.Stats.EscalationRetries != 0)
    Out += "\n  escalation retries: " +
           std::to_string(R.Stats.EscalationRetries);
  if (R.Verdict == EngineResult::Verdict::Unsafe) {
    Out += "\n  witness steps:      " + std::to_string(R.Witness.size());
    Out += R.WitnessReplayed ? "\n  witness replayed:   yes"
                             : "\n  witness replayed:   no";
    if (R.WitnessReplayed && !R.Replay.States.empty()) {
      Out += "\n  witness input:     ";
      for (const auto &[Var, Value] : R.Replay.States.front().Scalars)
        Out += " " + Var->name() + "=" + Value.toString();
    }
  }
  Out += "\n";
  return Out;
}
