//===- core/Fingerprint.h - Deterministic program fingerprints -*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A 128-bit structural fingerprint of a lowered program, stable across
/// TermManager instances and process runs: it hashes a canonical render
/// of the transition system (variables with sorts, location names,
/// entry/error, and every transition's source/target/relation). The
/// render sorts commutative operand lists (And/Or/Add/Mul/Eq) by their
/// own rendered strings rather than trusting term order — term
/// construction orders those lists by interned id, which depends on what
/// else the arena has interned, so the ordinary printed form of the same
/// source differs between a fresh and a "warm" TermManager. Two programs
/// share a fingerprint iff their lowered transition systems are equal
/// modulo that commutative reordering, so the pathinvd verdict cache can
/// key on it without sharing any term arena between workers.
///
/// The fingerprint is a cache *key*, not a trust boundary: cache hits are
/// always revalidated against the program they are served for
/// (checkInvariantMap for Safe certificates, concrete witness replay for
/// Unsafe), so even a full collision or a poisoned entry cannot produce a
/// wrong answer — only a wasted recomputation.
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_CORE_FINGERPRINT_H
#define PATHINV_CORE_FINGERPRINT_H

#include <cstdint>
#include <string>

namespace pathinv {

class Program;

/// A 128-bit fingerprint (two independent 64-bit FNV-1a streams over the
/// same canonical byte sequence).
struct Fingerprint {
  uint64_t Hi = 0;
  uint64_t Lo = 0;

  bool operator==(const Fingerprint &RHS) const {
    return Hi == RHS.Hi && Lo == RHS.Lo;
  }
  bool operator!=(const Fingerprint &RHS) const { return !(*this == RHS); }
  bool operator<(const Fingerprint &RHS) const {
    return Hi != RHS.Hi ? Hi < RHS.Hi : Lo < RHS.Lo;
  }

  /// 32 lowercase hex digits, e.g. for protocol responses and logs.
  std::string hex() const;
};

/// Fingerprints \p P's transition system (see file comment for what is
/// hashed). Deterministic across term managers and runs.
Fingerprint fingerprintProgram(const Program &P);

} // namespace pathinv

#endif // PATHINV_CORE_FINGERPRINT_H
