//===- tests/fuzz_oracle_test.cpp - Fuzzer + differential oracle ----------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The testing subsystem's own contract, in four layers:
//
//   1. The generator is deterministic and its ground truth is constructed,
//      not guessed: every unsafe case re-confirms through the bounded
//      interpreter, every safe case survives the same exhaustive search,
//      and every emitted program round-trips through the parser.
//   2. A fixed-seed sweep of 200 programs through all three engines must
//      produce zero adjudication bugs: no wrong verdicts, no cross-engine
//      Safe/Unsafe disagreement, every Unsafe witness replayed, every
//      Safe certificate independently validated.
//   3. The minimizer converges: accepted edits strictly shrink a
//      well-founded metric, the result still fails, and re-minimizing is
//      a no-op (fixpoint).
//   4. Certificates round-trip: serialize -> parse -> checkInvariantMap
//      succeeds on engine-exported proofs, and tampered text is rejected.
//
//===----------------------------------------------------------------------===//

#include "core/Verifier.h"
#include "fuzz/Fuzz.h"
#include "lang/Parser.h"
#include "lang/PilPrinter.h"
#include "synth/InvariantMap.h"

#include <gtest/gtest.h>

#include <string>

using namespace pathinv;
using namespace pathinv::fuzz;

namespace {

// Seeds used by the determinism / self-check layers. Small enough that
// the exhaustive interpreter confirmation stays fast even under
// sanitizers; the big sweep below covers the full 200-seed block.
constexpr uint64_t SelfCheckSeeds = 60;

TEST(FuzzGenerator, DeterministicBytes) {
  for (uint64_t S = 1; S <= SelfCheckSeeds; ++S) {
    GeneratedProgram A = generateProgram(S);
    GeneratedProgram B = generateProgram(S);
    EXPECT_EQ(A.Source, B.Source) << "seed " << S;
    EXPECT_EQ(A.ExpectSafe, B.ExpectSafe) << "seed " << S;
    EXPECT_EQ(A.Family, B.Family) << "seed " << S;
    EXPECT_EQ(A.Mutation, B.Mutation) << "seed " << S;
    EXPECT_EQ(A.Seed, S);
  }
}

TEST(FuzzGenerator, EveryProgramParsesAndRoundTrips) {
  for (uint64_t S = 1; S <= SelfCheckSeeds; ++S) {
    GeneratedProgram GP = generateProgram(S);
    TermManager TM;
    Expected<ProcAst> P = parseProc(TM, GP.Source);
    ASSERT_TRUE(P.hasValue())
        << "seed " << S << ": " << P.error().render() << "\n"
        << GP.Source;
    // Printer inverse: re-parsing the printed AST gives the same text
    // again (print is a normal form, so one round trip reaches it).
    std::string Printed = printPil(P.get());
    Expected<ProcAst> Q = parseProc(TM, Printed);
    ASSERT_TRUE(Q.hasValue()) << "seed " << S << ":\n" << Printed;
    EXPECT_EQ(printPil(Q.get()), Printed) << "seed " << S;
  }
}

TEST(FuzzGenerator, GroundTruthSelfCheck) {
  int Unsafe = 0;
  for (uint64_t S = 1; S <= SelfCheckSeeds; ++S) {
    GeneratedProgram GP = generateProgram(S);
    if (GP.ExpectSafe) {
      // A planted-invariant program must survive the same exhaustive
      // bounded search that confirms mutations: finding a concrete error
      // execution here would mean the generator planted a lie.
      EXPECT_FALSE(confirmsUnsafe(GP.Source))
          << "seed " << S << " labeled safe but has a concrete error:\n"
          << GP.Source;
      EXPECT_TRUE(GP.Mutation.empty()) << "seed " << S;
    } else {
      ++Unsafe;
      // The generator only emits unsafe cases it already confirmed; the
      // confirmation must reproduce on the emitted bytes.
      EXPECT_TRUE(confirmsUnsafe(GP.Source))
          << "seed " << S << " labeled unsafe (" << GP.Mutation
          << ") but the interpreter finds no error:\n"
          << GP.Source;
      EXPECT_FALSE(GP.Mutation.empty()) << "seed " << S;
    }
  }
  // The mutation rate is tuned to ~45%; a collapse to one label would
  // quietly gut the differential coverage.
  EXPECT_GE(Unsafe, 10);
  EXPECT_LE(Unsafe, static_cast<int>(SelfCheckSeeds) - 10);
}

// The acceptance gate: the full fixed-seed block through all three
// engines, witness-exact adjudication, zero tolerated disagreements.
TEST(FuzzOracle, FixedSeedSweepHasZeroBugs) {
  SweepOptions Opts;
  Opts.FirstSeed = 1;
  Opts.Count = 200;
  // Tight wall backstop: deadline-bound cases resolve to a cheap Unknown
  // (never a bug) instead of burning 30 s per engine, which keeps the
  // sweep inside the sanitized-CI timeout. The step budgets stay at the
  // oracle defaults, so the adjudicated verdicts are deterministic.
  Opts.Oracle.Budget.TimeoutSeconds = 5;
  SweepResult Res = runSweep(Opts);
  EXPECT_EQ(Res.Programs, 200);
  EXPECT_EQ(Res.ExpectedSafe + Res.ExpectedUnsafe, Res.Programs);
  for (const OracleReport &Rep : Res.BugReports) {
    for (const std::string &Bug : Rep.Bugs)
      ADD_FAILURE() << "seed " << Rep.Seed << ": " << Bug;
  }
  EXPECT_TRUE(Res.ok());
  // Sanity on the adjudicated verdicts themselves: the sweep must prove
  // things, not hide behind Unknown. Every counted Safe carried a
  // validated certificate and every counted Unsafe a replayed witness
  // (mismatches would have been bugs), so floors on these are floors on
  // end-to-end proof coverage.
  EXPECT_GT(Res.SafeVerdicts, 0);
  EXPECT_GT(Res.UnsafeVerdicts, 0);
}

TEST(FuzzMinimizer, ConvergesAndPreservesFailure) {
  // First confirmed-unsafe seed in the block; minimize under the
  // ground-truth predicate itself (still exhibits a concrete error).
  GeneratedProgram GP;
  for (uint64_t S = 1; S <= 200; ++S) {
    GP = generateProgram(S);
    if (!GP.ExpectSafe)
      break;
  }
  ASSERT_FALSE(GP.ExpectSafe);
  FailurePredicate StillUnsafe = [](const std::string &Src) {
    return confirmsUnsafe(Src);
  };
  std::string Min = minimizeProgram(GP.Source, StillUnsafe);
  EXPECT_TRUE(confirmsUnsafe(Min)) << Min;
  EXPECT_LE(Min.size(), GP.Source.size());
  // Fixpoint: a second pass has no accepted edit left.
  EXPECT_EQ(minimizeProgram(Min, StillUnsafe), Min);
}

TEST(FuzzMinimizer, ReturnsInputWhenPredicateNeverHeld) {
  GeneratedProgram GP = generateProgram(1);
  FailurePredicate Never = [](const std::string &) { return false; };
  EXPECT_EQ(minimizeProgram(GP.Source, Never), GP.Source);
}

TEST(FuzzMinimizer, RejectsUnparseableInput) {
  FailurePredicate Always = [](const std::string &) { return true; };
  std::string Garbage = "this is not PIL";
  EXPECT_EQ(minimizeProgram(Garbage, Always), Garbage);
}

TEST(Certificate, RoundTripThroughTextValidates) {
  // A paper-shaped safe loop the CEGAR engine proves with an ARG
  // fixpoint; ExportCertificate (default on) attaches the invariant map.
  const char *Source = "proc f(n) {\n"
                       "  var x, i;\n"
                       "  assume(n >= 0);\n"
                       "  x = 0;\n"
                       "  i = 0;\n"
                       "  while (i < n) {\n"
                       "    x = x + 2;\n"
                       "    i = i + 1;\n"
                       "  }\n"
                       "  assert(x == 2*i);\n"
                       "}\n";
  Verifier V;
  Expected<Program> P = V.loadSource(Source);
  ASSERT_TRUE(P.hasValue()) << P.error().render();
  EngineResult R = V.verifyProgram(P.get());
  ASSERT_EQ(R.Verdict, decltype(R.Verdict)::Safe);
  ASSERT_TRUE(R.HasInvariants);

  std::string Text = serializeCertificate(P.get(), R.Invariants);
  Expected<InvariantMap> Parsed = parseCertificate(P.get(), Text);
  ASSERT_TRUE(Parsed.hasValue()) << Parsed.error().render() << "\n" << Text;
  InvariantCheckResult Check =
      checkInvariantMap(P.get(), Parsed.get(), V.solver());
  EXPECT_TRUE(Check.Ok) << Check.FailureReason << "\n" << Text;
}

TEST(Certificate, RejectsTamperedText) {
  const char *Source = "proc f(n) {\n"
                       "  var x;\n"
                       "  x = 0;\n"
                       "  assert(x == 0);\n"
                       "}\n";
  Verifier V;
  Expected<Program> P = V.loadSource(Source);
  ASSERT_TRUE(P.hasValue());

  // Wrong header: not a certificate.
  EXPECT_FALSE(
      parseCertificate(P.get(), "bogus-header\n").hasValue());
  // Invented identifier: formulas may only mention program variables.
  EXPECT_FALSE(parseCertificate(P.get(),
                                "pathinv-cert-v1\nl0 := ghost >= 0\n")
                   .hasValue());
  // Unknown location name.
  EXPECT_FALSE(parseCertificate(P.get(),
                                "pathinv-cert-v1\nnowhere := x >= 0\n")
                   .hasValue());
}

} // namespace
