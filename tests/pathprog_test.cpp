//===- tests/pathprog_test.cpp - Path-program construction tests ----------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"
#include "lang/Lower.h"
#include "pathprog/PathProgram.h"
#include "program/CutSet.h"
#include "smt/SmtSolver.h"

#include <gtest/gtest.h>

using namespace pathinv;

namespace {

/// Builds the worked example of Section 3: locations l0 l1 l2 lE with
/// rho0: l0->l1, rho1: l1->l2, rho2: l2->l1, rho3: l1->l0, rho4: l0->lE.
/// The relations are arbitrary distinct assumes (structure is what counts).
struct Section3Example {
  TermManager TM;
  std::unique_ptr<Program> P;
  LocId L0, L1, L2, LE;
  int Rho[5];

  Section3Example() {
    const Term *X = TM.mkVar("x", Sort::Int);
    P = std::make_unique<Program>(TM, std::vector<const Term *>{X});
    L0 = P->addLocation("l0");
    L1 = P->addLocation("l1");
    L2 = P->addLocation("l2");
    LE = P->addLocation("lE");
    P->setEntry(L0);
    P->setError(LE);
    auto Guard = [&](int K) {
      return P->mkAssume(TM.mkLe(TM.mkIntConst(K), X));
    };
    Rho[0] = P->addTransition(L0, Guard(0), L1, "rho0");
    Rho[1] = P->addTransition(L1, Guard(1), L2, "rho1");
    Rho[2] = P->addTransition(L2, Guard(2), L1, "rho2");
    Rho[3] = P->addTransition(L1, Guard(3), L0, "rho3");
    Rho[4] = P->addTransition(L0, Guard(4), LE, "rho4");
  }

  Path errorPath() const {
    return {Rho[0], Rho[1], Rho[2], Rho[3], Rho[0], Rho[3], Rho[4]};
  }
};

TEST(PathBlocksTest, Section3NestedBlocks) {
  Section3Example Ex;
  std::vector<PathBlock> Blocks =
      computePathBlocks(*Ex.P, Ex.errorPath());
  ASSERT_EQ(Blocks.size(), 2u);
  // Sorted outermost first: B1 = {l0, l1, l2} with header l0.
  EXPECT_EQ(Blocks[0].Header, Ex.L0);
  EXPECT_EQ(Blocks[0].Members,
            (std::set<LocId>{Ex.L0, Ex.L1, Ex.L2}));
  // B2 = {l1, l2} with header l1.
  EXPECT_EQ(Blocks[1].Header, Ex.L1);
  EXPECT_EQ(Blocks[1].Members, (std::set<LocId>{Ex.L1, Ex.L2}));
}

/// Renders a path-program transition as "from -> to : label" using the
/// (origLoc, position, hat) naming of the paper.
std::string describe(const PathProgram &PP, const Transition &T) {
  auto name = [&](LocId L) {
    const PathLocInfo &Info = PP.LocInfo[L];
    std::string Result = Info.IsHat ? "^" : "";
    Result += "l" + std::to_string(Info.OrigLoc) + "," +
              std::to_string(Info.Position);
    return Result;
  };
  return name(T.From) + " -> " + name(T.To) + " : " + T.Label;
}

TEST(PathProgramTest, Section3TransitionSet) {
  Section3Example Ex;
  PathProgram PP = buildPathProgram(*Ex.P, Ex.errorPath());

  std::set<std::string> Have;
  for (const Transition &T : PP.Prog.transitions())
    Have.insert(describe(PP, T));

  // The 17 transitions listed in Section 3 (l0=0, l1=1, l2=2, lE=3; the
  // X'=X bridges are labeled enter-block/exit-block here).
  const char *Listed[] = {
      // Path spine.
      "l0,0 -> l1,1 : rho0",
      "l1,1 -> l2,2 : rho1",
      "l2,2 -> l1,3 : rho2",
      "l1,3 -> l0,4 : rho3",
      "l0,4 -> l1,5 : rho0",
      "l1,5 -> l0,6 : rho3",
      "l0,6 -> l3,7 : rho4",
      // Inner-block hats at position 3.
      "l1,3 -> ^l1,3 : enter-block",
      "^l1,3 -> l1,3 : exit-block",
      "^l1,3 -> ^l2,3 : rho1",
      "^l2,3 -> ^l1,3 : rho2",
      // Outer-block hats at position 6.
      "l0,6 -> ^l0,6 : enter-block",
      "^l0,6 -> l0,6 : exit-block",
      "^l0,6 -> ^l1,6 : rho0",
      "^l1,6 -> ^l2,6 : rho1",
      "^l2,6 -> ^l1,6 : rho2",
      "^l1,6 -> ^l0,6 : rho3",
  };
  for (const char *Want : Listed)
    EXPECT_TRUE(Have.count(Want)) << "missing transition: " << Want;

  // The formal rule also covers the *second* exit of the inner block at
  // position 5 (the paper's listing omits it); these four transitions
  // enlarge the represented family of unwindings.
  const char *FormalExtra[] = {
      "l1,5 -> ^l1,5 : enter-block",
      "^l1,5 -> l1,5 : exit-block",
      "^l1,5 -> ^l2,5 : rho1",
      "^l2,5 -> ^l1,5 : rho2",
  };
  for (const char *Want : FormalExtra)
    EXPECT_TRUE(Have.count(Want)) << "missing transition: " << Want;

  EXPECT_EQ(Have.size(), 21u) << "exactly listed + formal-rule extras";
}

TEST(PathProgramTest, EntryErrorAndProvenance) {
  Section3Example Ex;
  PathProgram PP = buildPathProgram(*Ex.P, Ex.errorPath());
  const PathLocInfo &Entry = PP.LocInfo[PP.Prog.entry()];
  EXPECT_EQ(Entry.OrigLoc, Ex.L0);
  EXPECT_EQ(Entry.Position, 0);
  const PathLocInfo &Error = PP.LocInfo[PP.Prog.error()];
  EXPECT_EQ(Error.OrigLoc, Ex.LE);
  EXPECT_EQ(Error.Position, 7);
  // copiesOf projects back: l1 has copies at positions 1, 3, 5 (plain)
  // plus hats at 3, 5, 6.
  std::vector<LocId> Copies = PP.copiesOf(Ex.L1);
  EXPECT_EQ(Copies.size(), 6u);
}

TEST(PathProgramTest, ForwardCounterexampleYieldsLoopingPathProgram) {
  TermManager TM;
  auto P = loadProgram(TM, testprogs::Forward);
  ASSERT_TRUE(P.hasValue());
  const Program &Prog = P.get();

  // Build the Figure 1(b) counterexample: one loop iteration through the
  // then-branch, then exit and fail the assertion. Find it by BFS to the
  // error with exactly one traversal of the loop body.
  struct Node {
    LocId Loc;
    Path Steps;
  };
  Path Found;
  std::vector<Node> Queue{{Prog.entry(), {}}};
  for (size_t Head = 0; Head < Queue.size() && Found.empty(); ++Head) {
    Node Cur = Queue[Head];
    if (Cur.Loc == Prog.error()) {
      // Require a path that used the loop (long enough to contain it).
      if (Cur.Steps.size() >= 10)
        Found = Cur.Steps;
      continue;
    }
    if (Cur.Steps.size() >= 16)
      continue;
    for (int TransIdx : Prog.successorsOf(Cur.Loc)) {
      Node Next = Cur;
      Next.Steps.push_back(TransIdx);
      Next.Loc = Prog.transition(TransIdx).To;
      Queue.push_back(std::move(Next));
    }
  }
  ASSERT_FALSE(Found.empty());

  PathProgram PP = buildPathProgram(Prog, Found);
  // One nested block (the while loop).
  EXPECT_EQ(PP.Blocks.size(), 1u);
  // The path program has a cycle: its cutset exceeds {entry, error}.
  std::set<LocId> Cuts = computeCutSet(PP.Prog);
  EXPECT_GT(Cuts.size(), 2u);
  // Every location of the path program projects to a location of pi.
  for (const PathLocInfo &Info : PP.LocInfo) {
    EXPECT_GE(Info.OrigLoc, 0);
    EXPECT_LT(Info.OrigLoc, Prog.numLocations());
  }
  // The path program is itself a program whose own error paths are all
  // infeasible (the family of spurious counterexamples): check the two
  // shortest.
  SmtSolver Solver(TM);
  std::vector<Path> ErrorPaths;
  std::vector<Node> Queue2{{PP.Prog.entry(), {}}};
  for (size_t Head = 0; Head < Queue2.size() && ErrorPaths.size() < 2;
       ++Head) {
    Node Cur = Queue2[Head];
    if (Cur.Loc == PP.Prog.error()) {
      ErrorPaths.push_back(Cur.Steps);
      continue;
    }
    if (Cur.Steps.size() >= 24)
      continue;
    for (int TransIdx : PP.Prog.successorsOf(Cur.Loc)) {
      Node Next = Cur;
      Next.Steps.push_back(TransIdx);
      Next.Loc = PP.Prog.transition(TransIdx).To;
      Queue2.push_back(std::move(Next));
    }
  }
  ASSERT_GE(ErrorPaths.size(), 1u);
  for (const Path &Pi : ErrorPaths) {
    PathFormula PF = buildPathFormula(PP.Prog, Pi);
    EXPECT_EQ(Solver.checkSat(PF.formula(TM)), SmtSolver::Status::Unsat)
        << "path program admits a feasible error path";
  }
}

TEST(PathProgramTest, NoLoopsMeansNoHats) {
  TermManager TM;
  auto P = loadProgram(TM, testprogs::StraightSafe);
  ASSERT_TRUE(P.hasValue());
  // Error path: entry -> ... -> error (assert's negated edge).
  struct Node {
    LocId Loc;
    Path Steps;
  };
  Path Found;
  std::vector<Node> Queue{{P.get().entry(), {}}};
  for (size_t Head = 0; Head < Queue.size() && Found.empty(); ++Head) {
    Node Cur = Queue[Head];
    if (Cur.Loc == P.get().error()) {
      Found = Cur.Steps;
      break;
    }
    for (int TransIdx : P.get().successorsOf(Cur.Loc)) {
      Node Next = Cur;
      Next.Steps.push_back(TransIdx);
      Next.Loc = P.get().transition(TransIdx).To;
      Queue.push_back(std::move(Next));
    }
  }
  ASSERT_FALSE(Found.empty());
  PathProgram PP = buildPathProgram(P.get(), Found);
  EXPECT_TRUE(PP.Blocks.empty());
  for (const PathLocInfo &Info : PP.LocInfo)
    EXPECT_FALSE(Info.IsHat);
  EXPECT_EQ(static_cast<size_t>(PP.Prog.numTransitions()), Found.size());
}

} // namespace
