//===- tests/pdr_test.cpp - IC3/PDR engine and portfolio tests ------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The PDR backend: delta-encoded frame mechanics, the semantic frame
/// well-formedness checker (containment + relative inductiveness of
/// every clause), six-program verdicts with independently validated
/// invariant maps, and the three-way cegar/pdr/portfolio differential.
///
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"
#include "core/Verifier.h"
#include "pdr/Frames.h"
#include "smt/SmtSolver.h"
#include "synth/InvariantMap.h"

#include <gtest/gtest.h>

#include <string>

using namespace pathinv;
using namespace pathinv::pdr;

namespace {

//===----------------------------------------------------------------------===//
// Frame mechanics (no solver)
//===----------------------------------------------------------------------===//

TEST(PdrFramesTest, CanonicalizationAndSubsumption) {
  TermManager TM;
  const Term *X = TM.mkVar("x", Sort::Int);
  const Term *A = TM.mkLe(TM.mkIntConst(0), X);
  const Term *B = TM.mkLe(X, TM.mkIntConst(9));

  Cube C = {B, A, B};
  canonicalizeCube(C);
  EXPECT_EQ(C.size(), 2u);

  Cube Small = {A};
  canonicalizeCube(Small);
  EXPECT_TRUE(cubeSubsumes(Small, C));  // Fewer literals: more states.
  EXPECT_FALSE(cubeSubsumes(C, Small));
  EXPECT_TRUE(cubeSubsumes(C, C));
}

TEST(PdrFramesTest, DeltaEncodingBlocksDownwardAndPushesUpward) {
  TermManager TM;
  const Term *X = TM.mkVar("x", Sort::Int);
  Program P(TM, {X});
  LocId Entry = P.addLocation("entry");
  LocId Mid = P.addLocation("mid");
  LocId Err = P.addLocation("err");
  P.setEntry(Entry);
  P.setError(Err);

  const Term *A = TM.mkLe(TM.mkIntConst(0), X);
  Frames F(P);
  EXPECT_EQ(F.frontier(), 1u);
  F.extend();
  F.extend();
  EXPECT_EQ(F.frontier(), 3u);

  // Blocking at level 2 makes the cube blocked at 1 and 2, not at 3.
  F.addBlockedCube(2, Mid, {TM.mkNot(A)});
  EXPECT_TRUE(F.isBlocked(1, Mid, {TM.mkNot(A)}));
  EXPECT_TRUE(F.isBlocked(2, Mid, {TM.mkNot(A)}));
  EXPECT_FALSE(F.isBlocked(3, Mid, {TM.mkNot(A)}));
  EXPECT_EQ(F.totalClauses(), 1u);

  // The clause set of F_1 contains the one of F_3 (delta >= level).
  std::vector<const Term *> At1, At3;
  F.collectClauses(TM, 1, Mid, At1);
  F.collectClauses(TM, 3, Mid, At3);
  EXPECT_EQ(At1.size(), 1u);
  EXPECT_TRUE(At3.empty());

  // Pushing moves, never copies.
  F.pushCube(2, Mid, 0);
  EXPECT_TRUE(F.isBlocked(3, Mid, {TM.mkNot(A)}));
  EXPECT_EQ(F.totalClauses(), 1u);
  EXPECT_TRUE(F.cubesAt(2, Mid).empty());

  // Delta level 2 is now empty everywhere: F_2 == F_3 is a fixpoint
  // candidate; the frontier level itself never qualifies.
  EXPECT_EQ(F.fixpointLevel(), 1);
}

//===----------------------------------------------------------------------===//
// Semantic well-formedness checker
//===----------------------------------------------------------------------===//

/// entry --(x:=0)--> loop --(x:=x+1)--> loop, loop --(x<0)--> error.
struct CounterCfa {
  TermManager TM;
  const Term *X = TM.mkVar("x", Sort::Int);
  Program P{TM, {X}};
  LocId Entry, Loop, Err;
  const Term *NonNeg = TM.mkLe(TM.mkIntConst(0), X);

  CounterCfa() {
    Entry = P.addLocation("entry");
    Loop = P.addLocation("loop");
    Err = P.addLocation("err");
    P.setEntry(Entry);
    P.setError(Err);
    P.addTransition(Entry, P.mkAssign(X, TM.mkIntConst(0)), Loop, "init");
    P.addTransition(Loop, P.mkAssign(X, TM.mkAdd(X, TM.mkIntConst(1))), Loop,
                    "inc");
    P.addTransition(Loop,
                    P.mkAssume(TM.mkLt(X, TM.mkIntConst(0))), Err, "bug");
  }
};

TEST(PdrFramesTest, VerifyFramesAcceptsInductiveTrail) {
  CounterCfa C;
  SmtSolver Solver(C.TM);
  Frames F(C.P);
  F.extend();
  // x >= 0 is inductive at the loop head: established by x:=0, preserved
  // by x:=x+1. Block its negation through level 2.
  F.addBlockedCube(2, C.Loop, {C.TM.mkNot(C.NonNeg)});
  EXPECT_EQ(verifyFrames(C.P, Solver, F), 0u);
}

TEST(PdrFramesTest, VerifyFramesRejectsNonInductiveClause) {
  CounterCfa C;
  SmtSolver Solver(C.TM);
  Frames F(C.P);
  F.extend();
  // x <= 5 is established by x:=0 but not preserved by x:=x+1: the
  // self-loop query F_1[loop] ∧ x'=x+1 ∧ ¬(x'<=5) has the witness x=5.
  const Term *Bounded = C.TM.mkLe(C.X, C.TM.mkIntConst(5));
  F.addBlockedCube(2, C.Loop, {C.TM.mkNot(Bounded)});
  EXPECT_GT(verifyFrames(C.P, Solver, F), 0u);
}

TEST(PdrFramesTest, VerifyFramesRejectsEntryClause) {
  CounterCfa C;
  SmtSolver Solver(C.TM);
  Frames F(C.P);
  // Entry's init frame is unconstrained: any clause there is ill-formed,
  // however plausible it looks.
  F.addBlockedCube(1, C.Entry, {C.TM.mkNot(C.NonNeg)});
  EXPECT_GT(verifyFrames(C.P, Solver, F), 0u);
}

//===----------------------------------------------------------------------===//
// Engine verdicts and invariant export
//===----------------------------------------------------------------------===//

struct ProgramCase {
  const char *Name;
  const char *Source;
  bool Safe;
};

const ProgramCase PaperPrograms[] = {
    {"straight_safe", testprogs::StraightSafe, true},
    {"forward", testprogs::Forward, true},
    {"init_check", testprogs::InitCheck, true},
    {"partition", testprogs::Partition, true},
    {"init_check_buggy", testprogs::InitCheckBuggy, false},
    {"scalar_bug", testprogs::ScalarBug, false},
};

TEST(PdrEngineTest, SixProgramVerdictsWithInductiveInvariantMaps) {
  for (const ProgramCase &C : PaperPrograms) {
    EngineOptions Opts;
    Opts.Engine = EngineKind::Pdr;
    Verifier V(Opts);
    auto P = V.loadSource(C.Source);
    ASSERT_TRUE(P.hasValue()) << C.Name;
    EngineResult R = V.verifyProgram(P.get());
    EXPECT_EQ(R.Verdict, C.Safe ? EngineResult::Verdict::Safe
                                : EngineResult::Verdict::Unsafe)
        << C.Name << ": " << R.Note;
    if (C.Safe) {
      // Every Safe proof exports a Section 3 invariant map, and that map
      // re-validates with the independent checker.
      ASSERT_TRUE(R.HasInvariants) << C.Name;
      InvariantCheckResult Check =
          checkInvariantMap(P.get(), R.Invariants, V.solver());
      EXPECT_TRUE(Check.Ok) << C.Name << ": " << Check.FailureReason;
    } else {
      // Unsafe comes from a concrete counterexample, replayed.
      EXPECT_TRUE(R.WitnessReplayed) << C.Name;
      EXPECT_FALSE(R.Witness.empty()) << C.Name;
    }
  }
}

TEST(PdrEngineTest, ReportsFrameStatistics) {
  EngineOptions Opts;
  Opts.Engine = EngineKind::Pdr;
  Verifier V(Opts);
  auto R = V.verifySource(testprogs::Forward);
  ASSERT_TRUE(R.hasValue());
  EXPECT_EQ(R.get().Verdict, EngineResult::Verdict::Safe);
  // FORWARD needs real frame work before the refinement ladder ends it:
  // obligations processed, clauses learned, at least one frame opened.
  EXPECT_GT(R.get().Stats.PdrFrames, 0u);
  EXPECT_GT(R.get().Stats.PdrObligations, 0u);
  EXPECT_GT(R.get().Stats.PdrClausesLearned, 0u);
}

//===----------------------------------------------------------------------===//
// Three-way differential: cegar, pdr, portfolio agree everywhere
//===----------------------------------------------------------------------===//

TEST(PdrDifferentialTest, AllEnginesAgreeOnPaperPrograms) {
  for (const ProgramCase &C : PaperPrograms) {
    auto Want = C.Safe ? EngineResult::Verdict::Safe
                       : EngineResult::Verdict::Unsafe;
    for (EngineKind Kind :
         {EngineKind::Cegar, EngineKind::Pdr, EngineKind::Portfolio}) {
      EngineOptions Opts;
      Opts.Engine = Kind;
      Verifier V(Opts);
      auto P = V.loadSource(C.Source);
      ASSERT_TRUE(P.hasValue()) << C.Name;
      EngineResult R = V.verifyProgram(P.get());
      EXPECT_EQ(R.Verdict, Want)
          << C.Name << " under " << engineKindName(Kind) << ": " << R.Note;
      if (C.Safe && R.HasInvariants) {
        InvariantCheckResult Check =
            checkInvariantMap(P.get(), R.Invariants, V.solver());
        EXPECT_TRUE(Check.Ok)
            << C.Name << " under " << engineKindName(Kind) << ": "
            << Check.FailureReason;
      }
    }
  }
}

TEST(PdrPortfolioTest, WinnerIsAttributedInTheNote) {
  // An unsafe program is decided by a lane (the probe cannot prove
  // unsafety), so the note must name the winning engine.
  EngineOptions Opts;
  Opts.Engine = EngineKind::Portfolio;
  Verifier V(Opts);
  auto R = V.verifySource(testprogs::ScalarBug);
  ASSERT_TRUE(R.hasValue());
  EXPECT_EQ(R.get().Verdict, EngineResult::Verdict::Unsafe);
  EXPECT_NE(R.get().Note.find("portfolio:"), std::string::npos)
      << R.get().Note;
}

TEST(PdrPortfolioTest, BareRaceDecidesWithoutTheProbe) {
  // With the shared synthesis probe disabled the race alone must still
  // reach the verdict on a program both engines can finish quickly.
  EngineOptions Opts;
  Opts.Engine = EngineKind::Portfolio;
  Opts.PortfolioProbe = false;
  Verifier V(Opts);
  auto R = V.verifySource(testprogs::StraightSafe);
  ASSERT_TRUE(R.hasValue());
  EXPECT_EQ(R.get().Verdict, EngineResult::Verdict::Safe);
  EXPECT_NE(R.get().Note.find("won the race"), std::string::npos)
      << R.get().Note;
}

} // namespace
