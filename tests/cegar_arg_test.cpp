//===- tests/cegar_arg_test.cpp - Persistent ARG engine tests -------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lazy-abstraction reachability engine: per-location precision
/// scoping, graph-wide covering and forced covering, subtree-scoped
/// refinement reuse (the ARG engine must expand strictly less than a
/// restart re-exploration), ARG well-formedness invariants, and a
/// differential check that all six paper programs keep their verdicts
/// under both reachability engines.
///
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"
#include "cegar/Arg.h"
#include "cegar/Engine.h"
#include "core/Verifier.h"
#include "lang/Lower.h"
#include "logic/FormulaParser.h"
#include "smt/SmtSolver.h"

#include <gtest/gtest.h>

#include <string>

using namespace pathinv;

namespace {

//===----------------------------------------------------------------------===//
// Precision: global vs location-scoped predicates
//===----------------------------------------------------------------------===//

class PrecisionTest : public ::testing::Test {
protected:
  const Term *parse(const char *Text) {
    auto F = parseFormula(TM, Text, Env);
    EXPECT_TRUE(F.hasValue()) << F.error().render();
    return F.get();
  }

  TermManager TM;
  SortEnv Env;
};

TEST_F(PrecisionTest, ScopedPredicateStaysOutOfOtherLocations) {
  Precision Pi;
  const Term *P0 = parse("x >= 0");
  const Term *P1 = parse("x <= 9");
  EXPECT_TRUE(Pi.add(1, P0));
  EXPECT_FALSE(Pi.add(1, P0)); // Duplicate.
  EXPECT_TRUE(Pi.addGlobal(P1));
  EXPECT_FALSE(Pi.add(2, P1)); // Already global: not new anywhere.

  std::vector<const Term *> AtLoc1, AtLoc2;
  Pi.collectRelevant(1, AtLoc1);
  Pi.collectRelevant(2, AtLoc2);
  // Loc 1 sees the global predicate and its own; loc 2 only the global.
  EXPECT_EQ(AtLoc1.size(), 2u);
  EXPECT_EQ(AtLoc2.size(), 1u);
  EXPECT_EQ(AtLoc2[0], P1);
  EXPECT_EQ(Pi.sizeAt(1), 2u);
  EXPECT_EQ(Pi.sizeAt(2), 1u);
  EXPECT_EQ(Pi.totalPredicates(), 2u);
}

TEST_F(PrecisionTest, ScopedPredicateSkipsOtherLocationsBatches) {
  // Two verification runs of the same straight-line program: one with the
  // predicate scoped to a single location, one with it global. The scoped
  // run must issue strictly fewer entailment queries — the predicate never
  // joins the labelling batch of any other location.
  const char *Src = "proc p(n) { var x; x = 1; x = x + 1; x = x + 1; "
                    "assert(x >= 0); }";
  auto run = [&](bool Scoped) {
    TermManager TM2;
    auto P = loadProgram(TM2, Src);
    EXPECT_TRUE(P.hasValue());
    SmtSolver Solver(TM2);
    SortEnv Env2;
    Precision Pi;
    const Term *Pred = parseFormula(TM2, "x >= 1", Env2).get();
    if (Scoped) {
      Pi.add(1, Pred);
    } else {
      Pi.addGlobal(Pred);
    }
    ReachEngine Reach(P.get(), Pi, Solver);
    ArgRunResult R = Reach.run();
    // Globally the predicate reaches the assert location and proves it;
    // scoped to one early location it (correctly) cannot — precision
    // scoping changes where the predicate is tracked, not just the cost.
    EXPECT_EQ(R.Kind, Scoped ? ArgRunResult::Kind::Counterexample
                             : ArgRunResult::Kind::Proof);
    EXPECT_EQ("", Reach.arg().verifyInvariants());
    // No node outside location 1 may track the scoped predicate.
    if (Scoped) {
      for (const ArgNode &N : Reach.arg().nodes()) {
        if (N.Loc != 1) {
          EXPECT_EQ(N.Literals.count(Pred), 0u);
        }
      }
    }
    return Reach.stats().EntailmentQueries;
  };
  uint64_t ScopedQueries = run(/*Scoped=*/true);
  uint64_t GlobalQueries = run(/*Scoped=*/false);
  EXPECT_LT(ScopedQueries, GlobalQueries);
}

//===----------------------------------------------------------------------===//
// Covering and ARG invariants
//===----------------------------------------------------------------------===//

TEST_F(PrecisionTest, CoveringClosesLoopsAndInvariantsHold) {
  const char *Src =
      "proc loop(n) { var i; i = 0; while (i < n) { i = i + 1; } "
      "assert(i >= 0); }";
  TermManager TM2;
  auto P = loadProgram(TM2, Src);
  ASSERT_TRUE(P.hasValue());
  SmtSolver Solver(TM2);
  SortEnv Env2;
  Precision Pi;
  Pi.addGlobal(parseFormula(TM2, "i >= 0", Env2).get());

  ReachEngine Reach(P.get(), Pi, Solver);
  ArgRunResult R = Reach.run();
  // The invariant i >= 0 is inductive: the loop closes by covering, the
  // error edge is abstractly infeasible, and exploration is finite.
  EXPECT_EQ(R.Kind, ArgRunResult::Kind::Proof);
  EXPECT_GT(Reach.stats().NodesCovered, 0u);
  EXPECT_GT(Reach.stats().CoverChecks, 0u);
  EXPECT_EQ("", Reach.arg().verifyInvariants());

  // Structural spot checks on the covering relation.
  bool SawCover = false;
  for (const ArgNode &N : Reach.arg().nodes()) {
    if (N.St != ArgNode::State::Covered)
      continue;
    SawCover = true;
    const ArgNode &Cov = Reach.arg().node(N.CoveredBy);
    EXPECT_EQ(Cov.St, ArgNode::State::Expanded);
    EXPECT_EQ(Cov.Loc, N.Loc);
    EXPECT_TRUE(N.Children.empty());
  }
  EXPECT_TRUE(SawCover);
}

//===----------------------------------------------------------------------===//
// Localized predicate attribution
//===----------------------------------------------------------------------===//

TEST(RefinerAttributionTest, NewPredicatesLandOnPathLocations) {
  // The refiner reports its contribution as localized (location,
  // predicate) pairs; every attributed location must lie on the refined
  // error path, and each pair must actually be in the precision.
  TermManager TM;
  auto P = loadProgram(
      TM, "proc p(n) { var i; i = 0; while (i < 3) { i = i + 1; } "
          "assert(i == 3); }");
  ASSERT_TRUE(P.hasValue());
  SmtSolver Solver(TM);
  Precision Pi;
  ReachEngine Reach(P.get(), Pi, Solver);
  ArgRunResult R = Reach.run();
  ASSERT_EQ(R.Kind, ArgRunResult::Kind::Counterexample);

  RefineResult Refined = refine(P.get(), R.ErrorPath, Pi, Solver,
                                RefinerKind::PathFormula);
  EXPECT_TRUE(Refined.Progress);
  ASSERT_FALSE(Refined.NewPredicates.empty());
  std::set<LocId> PathLocs;
  for (int T : R.ErrorPath) {
    PathLocs.insert(P.get().transition(T).From);
    PathLocs.insert(P.get().transition(T).To);
  }
  for (const auto &[Loc, Pred] : Refined.NewPredicates) {
    EXPECT_EQ(PathLocs.count(Loc), 1u);
    EXPECT_EQ(Pi.scopedAt(Loc).count(Pred), 1u);
  }
}

//===----------------------------------------------------------------------===//
// Subtree-scoped refinement: reuse across refinements
//===----------------------------------------------------------------------===//

TEST(ArgReuseTest, RefinementReusesUnaffectedSubtrees) {
  std::string Src = testprogs::sequentialLoops(4);
  auto runMode = [&](ReachMode Mode) {
    EngineOptions Opts;
    Opts.Refiner = RefinerKind::PathInvariantIntervals;
    Opts.Reach.Mode = Mode;
    Verifier V(Opts);
    auto R = V.verifySource(Src);
    EXPECT_TRUE(R.hasValue());
    EXPECT_EQ(R.get().Verdict, EngineResult::Verdict::Safe);
    return R.get().Stats;
  };
  EngineStats ArgStats = runMode(ReachMode::Arg);
  EngineStats RestartStats = runMode(ReachMode::Restart);

  // Both engines refine repeatedly; the ARG engine must do strictly less
  // reachability work — at least 2x fewer node expansions — because every
  // refinement N+1 reuses the subgraph loops 1..N already built, instead
  // of a fresh re-exploration.
  EXPECT_GT(RestartStats.Refinements, 3u);
  EXPECT_GE(RestartStats.NodesExpanded, 2 * ArgStats.NodesExpanded);
  EXPECT_GT(ArgStats.NodesReused, 0u);
  EXPECT_EQ(RestartStats.NodesReused, 0u);
}

TEST(ArgReuseTest, ForwardConvergesWithCoveringAndForcedCovers) {
  EngineOptions Opts;
  Opts.Reach.Mode = ReachMode::Arg;
  Verifier V(Opts);
  auto R = V.verifySource(testprogs::Forward);
  ASSERT_TRUE(R.hasValue());
  EXPECT_EQ(R.get().Verdict, EngineResult::Verdict::Safe);
  // FORWARD's loop closes through graph-wide covering, and refinements
  // leave reusable expanded nodes behind; at least one stale leaf is
  // strengthened into a cover instead of being expanded.
  EXPECT_GT(R.get().Stats.NodesCovered, 0u);
  EXPECT_GT(R.get().Stats.NodesReused, 0u);
  EXPECT_GT(R.get().Stats.ForcedCovers, 0u);
}

//===----------------------------------------------------------------------===//
// Differential: both engines agree on every paper program
//===----------------------------------------------------------------------===//

struct ProgramCase {
  const char *Name;
  const char *Source;
  bool Safe;
};

TEST(ArgDifferentialTest, AllPaperProgramVerdictsMatchRestartEngine) {
  const ProgramCase Cases[] = {
      {"forward", testprogs::Forward, true},
      {"init_check", testprogs::InitCheck, true},
      {"partition", testprogs::Partition, true},
      {"init_check_buggy", testprogs::InitCheckBuggy, false},
      {"scalar_bug", testprogs::ScalarBug, false},
      {"straight_safe", testprogs::StraightSafe, true},
  };
  for (const ProgramCase &C : Cases) {
    auto Want = C.Safe ? EngineResult::Verdict::Safe
                       : EngineResult::Verdict::Unsafe;
    for (ReachMode Mode : {ReachMode::Arg, ReachMode::Restart}) {
      EngineOptions Opts;
      Opts.Reach.Mode = Mode;
      Verifier V(Opts);
      auto R = V.verifySource(C.Source);
      ASSERT_TRUE(R.hasValue()) << C.Name;
      EXPECT_EQ(R.get().Verdict, Want)
          << C.Name << " under "
          << (Mode == ReachMode::Arg ? "arg" : "restart");
      // Unsafe verdicts must come with an independently replayed witness
      // under both engines.
      if (!C.Safe) {
        EXPECT_TRUE(R.get().WitnessReplayed) << C.Name;
      }
    }
  }
}

} // namespace
