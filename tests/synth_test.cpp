//===- tests/synth_test.cpp - Invariant synthesis tests --------------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"
#include "lang/Lower.h"
#include "logic/FormulaParser.h"
#include "logic/TermPrinter.h"
#include "pathprog/PathProgram.h"
#include "smt/QuantInst.h"
#include "smt/SmtSolver.h"
#include "synth/PathInvariants.h"
#include "synth/TemplateHeuristics.h"

#include <gtest/gtest.h>

using namespace pathinv;

namespace {

// --- Poly / Farkas units ----------------------------------------------------

TEST(PolyTest, Arithmetic) {
  UnknownPool Pool;
  int P0 = Pool.add(UnknownKind::Param, "p0");
  int L0 = Pool.add(UnknownKind::Multiplier, "l0");
  Poly A = Poly::unknown(P0) + Poly(Rational(2));
  Poly B = Poly::unknown(L0);
  Poly Prod = A * B; // l0*p0 + 2*l0
  EXPECT_EQ(Prod.terms().size(), 2u);
  EXPECT_FALSE(Prod.isLinear());
  auto Quad = Prod.quadraticUnknowns();
  ASSERT_EQ(Quad.size(), 2u);
  // Substituting the multiplier linearizes.
  Poly Sub = Prod.substitute({{L0, Rational(3)}});
  EXPECT_TRUE(Sub.isLinear());
  EXPECT_EQ(Sub.evaluate({Rational(5), Rational(99)}), Rational(21));
}

TEST(PolyTest, AccumulateOpsAliasSafe) {
  UnknownPool Pool;
  int P0 = Pool.add(UnknownKind::Param, "p0");
  int L0 = Pool.add(UnknownKind::Multiplier, "l0");
  Poly A = Poly::unknown(P0) + Poly(Rational(2));

  // addMul against distinct operands matches the expression form.
  Poly Acc = Poly::unknown(L0);
  Poly Expected = Acc + A * Rational(3);
  Acc.addMul(A, Rational(3));
  EXPECT_EQ(Acc, Expected);

  // Self-aliased scale-accumulate: P.addMul(P, -1) cancels to zero and
  // must not invalidate the live iteration.
  Poly SelfCancel = A;
  SelfCancel.addMul(SelfCancel, Rational(-1));
  EXPECT_TRUE(SelfCancel.isZero());
  Poly SelfDouble = A;
  SelfDouble.addMul(SelfDouble, Rational(1));
  EXPECT_EQ(SelfDouble, A * Rational(2));

  // Self-aliased polynomial product accumulate.
  Poly Q = Poly::unknown(L0);
  Poly QExpected = Q + Q * Q;
  Poly QSelf = Q;
  QSelf.addMul(QSelf, QSelf);
  EXPECT_EQ(QSelf, QExpected);

  // Single-unknown substitution matches the map form.
  Poly P = Poly::unknown(P0) * Poly::unknown(P0) + Poly::unknown(L0);
  EXPECT_EQ(P.substituteOne(P0, Rational(3)),
            P.substitute({{P0, Rational(3)}}));
}

TEST(PolyTest, SubstituteBothFactors) {
  UnknownPool Pool;
  int A = Pool.add(UnknownKind::Param, "a");
  int B = Pool.add(UnknownKind::Multiplier, "b");
  Poly P = Poly::unknown(A) * Poly::unknown(B);
  Poly Q = P.substitute({{A, Rational(2)}, {B, Rational(7)}});
  EXPECT_TRUE(Q.isConstant());
  EXPECT_EQ(Q.constantValue(), Rational(14));
}

TEST(FarkasTest, SimpleImplication) {
  // x - 1 <= 0 && -x <= 0  |=  x - 2 <= 0 must be derivable;
  // |= x + 1 <= 0 must not.
  TermManager TM;
  const Term *X = TM.mkVar("x", Sort::Int);
  auto mkRow = [&](int64_t CoeffX, int64_t Const) {
    ParamLinExpr E;
    E.addTerm(X, Poly(Rational(CoeffX)));
    E.addConstant(Poly(Rational(Const)));
    return E;
  };
  std::vector<Row> Ante{Row::le(mkRow(1, -1)), Row::le(mkRow(-1, 0))};

  auto solvable = [&](ParamLinExpr Target) {
    UnknownPool Pool;
    Condition Cond;
    ConditionAlternative Alt;
    Alt.Instances.push_back({Ante, Target});
    Cond.Alternatives.push_back(Alt);
    SynthResult R = solveConditions(Pool, {Cond});
    return R.Found;
  };
  EXPECT_TRUE(solvable(mkRow(1, -2)));
  EXPECT_FALSE(solvable(mkRow(1, 1)));
}

TEST(FarkasTest, RefuteInfeasibleAntecedent) {
  // x <= 0 && -x + 1 <= 0 (i.e. x >= 1) is infeasible: `false` derivable.
  TermManager TM;
  const Term *X = TM.mkVar("x", Sort::Int);
  ParamLinExpr E1, E2;
  E1.addTerm(X, Poly(Rational(1)));
  E2.addTerm(X, Poly(Rational(-1)));
  E2.addConstant(Poly(Rational(1)));
  UnknownPool Pool;
  Condition Cond;
  ConditionAlternative Alt;
  Alt.Instances.push_back(
      {{Row::le(E1), Row::le(E2)}, std::nullopt});
  Cond.Alternatives.push_back(Alt);
  EXPECT_TRUE(solveConditions(Pool, {Cond}).Found);

  // A feasible antecedent must not refute.
  Condition Cond2;
  ConditionAlternative Alt2;
  Alt2.Instances.push_back({{Row::le(E1)}, std::nullopt});
  Cond2.Alternatives.push_back(Alt2);
  UnknownPool Pool2;
  EXPECT_FALSE(solveConditions(Pool2, {Cond2}).Found);
}

// --- End-to-end synthesis on the paper's programs ----------------------------

class SynthFixture : public ::testing::Test {
protected:
  Program load(const char *Source) {
    auto P = loadProgram(TM, Source);
    EXPECT_TRUE(P.hasValue()) << P.error().render();
    return P.take();
  }

  TermManager TM;
  SmtSolver Solver{TM};
};

TEST_F(SynthFixture, ForwardWholeProgram) {
  // FORWARD needs the Section 5 template refinement: the pure equality
  // template fails, equality + inequality succeeds.
  Program P = load(testprogs::Forward);
  PathInvResult R = generatePathInvariants(P, Solver);
  ASSERT_TRUE(R.Found) << R.FailureReason;
  EXPECT_GE(R.LevelsTried, 2) << "equality-only template should fail first";
  // The loop-head invariant must entail a + b = 3i.
  std::set<LocId> Cuts = computeCutSet(P);
  const Term *Target = parseFormula(TM, "a + b = 3*i").get();
  bool SomeCutEntails = false;
  for (LocId Cut : Cuts) {
    if (Cut == P.entry() || Cut == P.error())
      continue;
    const Term *Inv = R.Map.at(TM, Cut);
    if (entailsWithQuant(TM, Solver, Inv, Target))
      SomeCutEntails = true;
  }
  EXPECT_TRUE(SomeCutEntails)
      << "no cutpoint invariant entails a+b=3i:\n" << R.Map.dump(P);
}

TEST_F(SynthFixture, ForwardInvariantMapVerifies) {
  Program P = load(testprogs::Forward);
  PathInvResult R = generatePathInvariants(P, Solver);
  ASSERT_TRUE(R.Found) << R.FailureReason;
  InvariantCheckResult Check = checkInvariantMap(P, R.Map, Solver);
  EXPECT_TRUE(Check.Ok) << Check.FailureReason;
}

TEST_F(SynthFixture, InitcheckQuantifiedInvariant) {
  Program P = load(testprogs::InitCheck);
  PathInvResult R = generatePathInvariants(P, Solver);
  ASSERT_TRUE(R.Found) << R.FailureReason;
  // Some cutpoint invariant must entail the paper's solved template
  // forall k: 0 <= k <= n-1 -> a[k] = 0 under i = n (after first loop).
  const Term *FullyInit =
      parseFormula(TM, "i = n -> (forall k. 0 <= k && k <= n - 1 -> "
                       "a[k] = 0)")
          .get();
  bool Witness = false;
  std::set<LocId> Cuts = computeCutSet(P);
  for (LocId Cut : Cuts) {
    if (Cut == P.entry() || Cut == P.error())
      continue;
    if (entailsWithQuant(TM, Solver, R.Map.at(TM, Cut), FullyInit))
      Witness = true;
  }
  EXPECT_TRUE(Witness) << R.Map.dump(P);
}

TEST_F(SynthFixture, BuggyProgramHasNoSafeMap) {
  // Section 6: for the buggy variant there is no safe invariant map; the
  // synthesizer must fail at every template level.
  Program P = load(testprogs::InitCheckBuggy);
  PathInvResult R = generatePathInvariants(P, Solver);
  EXPECT_FALSE(R.Found);
}

TEST_F(SynthFixture, StraightLineSafety) {
  Program P = load(testprogs::StraightSafe);
  PathInvResult R = generatePathInvariants(P, Solver);
  ASSERT_TRUE(R.Found) << R.FailureReason;
  EXPECT_TRUE(checkInvariantMap(P, R.Map, Solver).Ok);
}

TEST_F(SynthFixture, IntervalBackendOnSimpleLoop) {
  // x counts 0..9; assertion x <= 20 is interval-provable.
  Program P = load(R"(
    proc count(n) {
      var x;
      x = 0;
      while (x < 10) {
        x = x + 1;
      }
      assert(x <= 20);
    }
  )");
  PathInvResult R = generateIntervalInvariants(P, Solver);
  ASSERT_TRUE(R.Found) << R.FailureReason;
}

TEST_F(SynthFixture, IntervalBackendCannotDoRelational) {
  // Intervals cannot prove FORWARD (needs a+b=3i); must fail gracefully.
  Program P = load(testprogs::Forward);
  PathInvResult R = generateIntervalInvariants(P, Solver);
  EXPECT_FALSE(R.Found);
}

TEST_F(SynthFixture, CheckerRejectsBogusMap) {
  Program P = load(testprogs::StraightSafe);
  InvariantMap Bogus;
  Bogus.Inv[P.error()] = TM.mkFalse();
  // Claim x = 42 everywhere: not inductive.
  SortEnv Env;
  const Term *Claim = parseFormula(TM, "x = 42", Env).get();
  for (LocId Loc = 0; Loc < P.numLocations(); ++Loc)
    if (Loc != P.entry() && Loc != P.error())
      Bogus.Inv[Loc] = Claim;
  EXPECT_FALSE(checkInvariantMap(P, Bogus, Solver).Ok);
}

} // namespace
