//===- tests/synth_test.cpp - Invariant synthesis tests --------------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"
#include "fuzz/Fuzz.h"
#include "lang/Lower.h"
#include "logic/FormulaParser.h"
#include "logic/TermPrinter.h"
#include "pathprog/PathProgram.h"
#include "smt/QuantInst.h"
#include "smt/SmtSolver.h"
#include "synth/PathInvariants.h"
#include "synth/TemplateHeuristics.h"

#include <gtest/gtest.h>

using namespace pathinv;

namespace {

// --- Poly / Farkas units ----------------------------------------------------

TEST(PolyTest, Arithmetic) {
  UnknownPool Pool;
  int P0 = Pool.add(UnknownKind::Param, "p0");
  int L0 = Pool.add(UnknownKind::Multiplier, "l0");
  Poly A = Poly::unknown(P0) + Poly(Rational(2));
  Poly B = Poly::unknown(L0);
  Poly Prod = A * B; // l0*p0 + 2*l0
  EXPECT_EQ(Prod.terms().size(), 2u);
  EXPECT_FALSE(Prod.isLinear());
  auto Quad = Prod.quadraticUnknowns();
  ASSERT_EQ(Quad.size(), 2u);
  // Substituting the multiplier linearizes.
  Poly Sub = Prod.substitute({{L0, Rational(3)}});
  EXPECT_TRUE(Sub.isLinear());
  EXPECT_EQ(Sub.evaluate({Rational(5), Rational(99)}), Rational(21));
}

TEST(PolyTest, AccumulateOpsAliasSafe) {
  UnknownPool Pool;
  int P0 = Pool.add(UnknownKind::Param, "p0");
  int L0 = Pool.add(UnknownKind::Multiplier, "l0");
  Poly A = Poly::unknown(P0) + Poly(Rational(2));

  // addMul against distinct operands matches the expression form.
  Poly Acc = Poly::unknown(L0);
  Poly Expected = Acc + A * Rational(3);
  Acc.addMul(A, Rational(3));
  EXPECT_EQ(Acc, Expected);

  // Self-aliased scale-accumulate: P.addMul(P, -1) cancels to zero and
  // must not invalidate the live iteration.
  Poly SelfCancel = A;
  SelfCancel.addMul(SelfCancel, Rational(-1));
  EXPECT_TRUE(SelfCancel.isZero());
  Poly SelfDouble = A;
  SelfDouble.addMul(SelfDouble, Rational(1));
  EXPECT_EQ(SelfDouble, A * Rational(2));

  // Self-aliased polynomial product accumulate.
  Poly Q = Poly::unknown(L0);
  Poly QExpected = Q + Q * Q;
  Poly QSelf = Q;
  QSelf.addMul(QSelf, QSelf);
  EXPECT_EQ(QSelf, QExpected);

  // Single-unknown substitution matches the map form.
  Poly P = Poly::unknown(P0) * Poly::unknown(P0) + Poly::unknown(L0);
  EXPECT_EQ(P.substituteOne(P0, Rational(3)),
            P.substitute({{P0, Rational(3)}}));
}

TEST(PolyTest, SubstituteBothFactors) {
  UnknownPool Pool;
  int A = Pool.add(UnknownKind::Param, "a");
  int B = Pool.add(UnknownKind::Multiplier, "b");
  Poly P = Poly::unknown(A) * Poly::unknown(B);
  Poly Q = P.substitute({{A, Rational(2)}, {B, Rational(7)}});
  EXPECT_TRUE(Q.isConstant());
  EXPECT_EQ(Q.constantValue(), Rational(14));
}

TEST(FarkasTest, SimpleImplication) {
  // x - 1 <= 0 && -x <= 0  |=  x - 2 <= 0 must be derivable;
  // |= x + 1 <= 0 must not.
  TermManager TM;
  const Term *X = TM.mkVar("x", Sort::Int);
  auto mkRow = [&](int64_t CoeffX, int64_t Const) {
    ParamLinExpr E;
    E.addTerm(X, Poly(Rational(CoeffX)));
    E.addConstant(Poly(Rational(Const)));
    return E;
  };
  std::vector<Row> Ante{Row::le(mkRow(1, -1)), Row::le(mkRow(-1, 0))};

  auto solvable = [&](ParamLinExpr Target) {
    UnknownPool Pool;
    Condition Cond;
    ConditionAlternative Alt;
    Alt.Instances.push_back({Ante, Target});
    Cond.Alternatives.push_back(Alt);
    SynthResult R = solveConditions(Pool, {Cond});
    return R.Found;
  };
  EXPECT_TRUE(solvable(mkRow(1, -2)));
  EXPECT_FALSE(solvable(mkRow(1, 1)));
}

TEST(FarkasTest, RefuteInfeasibleAntecedent) {
  // x <= 0 && -x + 1 <= 0 (i.e. x >= 1) is infeasible: `false` derivable.
  TermManager TM;
  const Term *X = TM.mkVar("x", Sort::Int);
  ParamLinExpr E1, E2;
  E1.addTerm(X, Poly(Rational(1)));
  E2.addTerm(X, Poly(Rational(-1)));
  E2.addConstant(Poly(Rational(1)));
  UnknownPool Pool;
  Condition Cond;
  ConditionAlternative Alt;
  Alt.Instances.push_back(
      {{Row::le(E1), Row::le(E2)}, std::nullopt});
  Cond.Alternatives.push_back(Alt);
  EXPECT_TRUE(solveConditions(Pool, {Cond}).Found);

  // A feasible antecedent must not refute.
  Condition Cond2;
  ConditionAlternative Alt2;
  Alt2.Instances.push_back({{Row::le(E1)}, std::nullopt});
  Cond2.Alternatives.push_back(Alt2);
  UnknownPool Pool2;
  EXPECT_FALSE(solveConditions(Pool2, {Cond2}).Found);
}

// --- Conflict learning ------------------------------------------------------

TEST(SynthLearnTest, FingerprintCanonicalAcrossPools) {
  // The same constraint shape must serialize identically no matter which
  // raw ids the pool handed out — that is what makes the verdict cache
  // cross-scope (every template level allocates a fresh pool).
  auto mk = [](int A, int B) {
    std::vector<PolyConstraint> Cs;
    Cs.push_back({Poly::unknown(A) + Poly::unknown(B) * Rational(2), false});
    Cs.push_back({Poly::unknown(B), true});
    return Cs;
  };
  UnknownPool P1;
  int A1 = P1.add(UnknownKind::Param, "a");
  int B1 = P1.add(UnknownKind::Multiplier, "b");
  UnknownPool P2;
  P2.add(UnknownKind::Multiplier, "pad"); // shifts every later raw id
  int A2 = P2.add(UnknownKind::Param, "other");
  int B2 = P2.add(UnknownKind::Multiplier, "names");
  EXPECT_EQ(fingerprintCombo(mk(A1, B1), P1), fingerprintCombo(mk(A2, B2), P2));

  // Kinds are part of the identity: a Multiplier carries an implicit
  // >= 0 in the LP, so swapping kinds must change the fingerprint.
  UnknownPool P3;
  int A3 = P3.add(UnknownKind::Param, "a");
  int B3 = P3.add(UnknownKind::Param, "b");
  EXPECT_NE(fingerprintCombo(mk(A1, B1), P1), fingerprintCombo(mk(A3, B3), P3));

  // So is the relation: <= 0 vs = 0 on the same polynomial.
  std::vector<PolyConstraint> Le{{Poly::unknown(A1), false}};
  std::vector<PolyConstraint> Eq{{Poly::unknown(A1), true}};
  EXPECT_NE(fingerprintCombo(Le, P1), fingerprintCombo(Eq, P1));
}

TEST(SynthLearnTest, DedupAcrossDuplicateAlternatives) {
  // Two identical alternatives enumerate isomorphic combos (fresh
  // multipliers each, same canonical shape); the duplicates must be
  // recognized by fingerprint and never submitted to the LP again.
  TermManager TM;
  const Term *X = TM.mkVar("x", Sort::Int);
  auto mkRow = [&](int64_t CoeffX, int64_t Const) {
    ParamLinExpr E;
    E.addTerm(X, Poly(Rational(CoeffX)));
    E.addConstant(Poly(Rational(Const)));
    return E;
  };
  std::vector<Row> Ante{Row::le(mkRow(1, -1)), Row::le(mkRow(-1, 0))};
  Condition Cond;
  ConditionAlternative Alt;
  Alt.Instances.push_back({Ante, mkRow(1, -2)});
  Cond.Alternatives.push_back(Alt);
  Cond.Alternatives.push_back(Alt); // exact duplicate

  UnknownPool Pool;
  SynthResult R = solveConditions(Pool, {Cond});
  EXPECT_TRUE(R.Found);
  EXPECT_GT(R.Learn.CombosDeduped, 0u);

  // Learning off: same verdict, no dedup accounting.
  UnknownPool Pool2;
  SynthOptions Off;
  Off.Learning = false;
  SynthResult R2 = solveConditions(Pool2, {Cond}, Off);
  EXPECT_TRUE(R2.Found);
  EXPECT_EQ(R2.Learn.CombosDeduped, 0u);
}

TEST(SynthLearnTest, VerdictCachePersistsAcrossRuns) {
  // A persistent learner carries combo verdicts across solveConditions
  // calls — the cross-scope reuse that survives Farkas scope teardowns.
  TermManager TM;
  const Term *X = TM.mkVar("x", Sort::Int);
  auto mkRow = [&](int64_t CoeffX, int64_t Const) {
    ParamLinExpr E;
    E.addTerm(X, Poly(Rational(CoeffX)));
    E.addConstant(Poly(Rational(Const)));
    return E;
  };
  Condition Cond;
  ConditionAlternative Alt;
  Alt.Instances.push_back(
      {{Row::le(mkRow(1, -1)), Row::le(mkRow(-1, 0))}, mkRow(1, -2)});
  Cond.Alternatives.push_back(Alt);

  SynthLearner Learner;
  SynthOptions Opts;
  Opts.Learner = &Learner;

  UnknownPool Pool1;
  SynthResult R1 = solveConditions(Pool1, {Cond}, Opts);
  ASSERT_TRUE(R1.Found);
  EXPECT_EQ(R1.Learn.LemmasReused, 0u) << "first run has nothing to reuse";

  UnknownPool Pool2; // fresh pool: fresh multiplier ids, same shapes
  SynthResult R2 = solveConditions(Pool2, {Cond}, Opts);
  ASSERT_TRUE(R2.Found);
  EXPECT_GT(R2.Learn.LemmasReused, 0u);
  EXPECT_LT(R2.LpChecks, R1.LpChecks)
      << "cached verdicts should replace leaf LP checks";
  EXPECT_EQ(Learner.Stats.LemmasReused, R2.Learn.LemmasReused)
      << "lifetime totals accumulate the per-run deltas";
}

TEST(SynthLearnTest, LearningOffMatchesOnSyntheticConditions) {
  // Verdict parity on both polarities of a small Farkas query.
  TermManager TM;
  const Term *X = TM.mkVar("x", Sort::Int);
  auto mkRow = [&](int64_t CoeffX, int64_t Const) {
    ParamLinExpr E;
    E.addTerm(X, Poly(Rational(CoeffX)));
    E.addConstant(Poly(Rational(Const)));
    return E;
  };
  std::vector<Row> Ante{Row::le(mkRow(1, -1)), Row::le(mkRow(-1, 0))};
  for (int64_t Const : {-2, 1}) { // derivable / not derivable
    Condition Cond;
    ConditionAlternative Alt;
    Alt.Instances.push_back({Ante, mkRow(1, Const)});
    Cond.Alternatives.push_back(Alt);
    UnknownPool PoolOn, PoolOff;
    SynthOptions Off;
    Off.Learning = false;
    SynthResult On = solveConditions(PoolOn, {Cond});
    SynthResult Ref = solveConditions(PoolOff, {Cond}, Off);
    EXPECT_EQ(On.Found, Ref.Found) << "target const " << Const;
  }
}

TEST(SynthLearnTest, NogoodPrunesRepeatedConflict) {
  // Hand-built condition system whose conflict cores mix depths, so the
  // backjumping search revisits a recorded conflict. Per-depth choices
  // over params a, b: {a<=0 | a>=2}, {b<=0 | b>=2}, {a>=1 | b>=1}
  // (each injected as "x <= 0 |= x + expr <= 0", which Farkas-reduces
  // to "expr <= 0"). The first descent refutes a>=1 against a<=0 (core
  // depths {0,2}) and b>=1 against b<=0 (core depths {1,2}), backjumps
  // to depth 1, flips to b>=2 — and then meets a>=1 again under the
  // unchanged a<=0: exactly the recorded nogood, pruned without an LP
  // check before the search completes on {a<=0, b>=2, b>=1}.
  TermManager TM;
  const Term *X = TM.mkVar("x", Sort::Int);
  UnknownPool Pool;
  int A = Pool.add(UnknownKind::Param, "a");
  int B = Pool.add(UnknownKind::Param, "b");
  ParamLinExpr AnteE;
  AnteE.addTerm(X, Poly(Rational(1)));
  std::vector<Row> Ante{Row::le(AnteE)};
  auto mkAlt = [&](Poly Const) {
    ParamLinExpr T;
    T.addTerm(X, Poly(Rational(1)));
    T.addConstant(Const);
    ConditionAlternative Alt;
    Alt.Instances.push_back({Ante, T});
    return Alt;
  };
  Poly PA = Poly::unknown(A), PB = Poly::unknown(B);
  Condition C1, C2, C3;
  C1.Alternatives = {mkAlt(PA), mkAlt(Poly(Rational(2)) - PA)};
  C2.Alternatives = {mkAlt(PB), mkAlt(Poly(Rational(2)) - PB)};
  C3.Alternatives = {mkAlt(Poly(Rational(1)) - PA),
                     mkAlt(Poly(Rational(1)) - PB)};
  SynthResult R = solveConditions(Pool, {C1, C2, C3});
  EXPECT_TRUE(R.Found);
  EXPECT_GT(R.Learn.Nogoods, 0u);

  // Learning off: same verdict, nothing pruned by nogoods.
  UnknownPool Pool2;
  int A2 = Pool2.add(UnknownKind::Param, "a");
  int B2 = Pool2.add(UnknownKind::Param, "b");
  (void)A2;
  (void)B2;
  SynthOptions Off;
  Off.Learning = false;
  SynthResult ROff = solveConditions(Pool2, {C1, C2, C3}, Off);
  EXPECT_TRUE(ROff.Found);
  EXPECT_EQ(ROff.Learn.Nogoods, 0u);
}

// --- End-to-end synthesis on the paper's programs ----------------------------

class SynthFixture : public ::testing::Test {
protected:
  Program load(const char *Source) {
    auto P = loadProgram(TM, Source);
    EXPECT_TRUE(P.hasValue()) << P.error().render();
    return P.take();
  }

  TermManager TM;
  SmtSolver Solver{TM};
};

TEST_F(SynthFixture, ForwardWholeProgram) {
  // FORWARD needs the Section 5 template refinement: the pure equality
  // template fails, equality + inequality succeeds.
  Program P = load(testprogs::Forward);
  PathInvResult R = generatePathInvariants(P, Solver);
  ASSERT_TRUE(R.Found) << R.FailureReason;
  EXPECT_GE(R.LevelsTried, 2) << "equality-only template should fail first";
  // The loop-head invariant must entail a + b = 3i.
  std::set<LocId> Cuts = computeCutSet(P);
  const Term *Target = parseFormula(TM, "a + b = 3*i").get();
  bool SomeCutEntails = false;
  for (LocId Cut : Cuts) {
    if (Cut == P.entry() || Cut == P.error())
      continue;
    const Term *Inv = R.Map.at(TM, Cut);
    if (entailsWithQuant(TM, Solver, Inv, Target))
      SomeCutEntails = true;
  }
  EXPECT_TRUE(SomeCutEntails)
      << "no cutpoint invariant entails a+b=3i:\n" << R.Map.dump(P);
}

TEST_F(SynthFixture, ForwardInvariantMapVerifies) {
  Program P = load(testprogs::Forward);
  PathInvResult R = generatePathInvariants(P, Solver);
  ASSERT_TRUE(R.Found) << R.FailureReason;
  InvariantCheckResult Check = checkInvariantMap(P, R.Map, Solver);
  EXPECT_TRUE(Check.Ok) << Check.FailureReason;
}

TEST_F(SynthFixture, InitcheckQuantifiedInvariant) {
  Program P = load(testprogs::InitCheck);
  PathInvResult R = generatePathInvariants(P, Solver);
  ASSERT_TRUE(R.Found) << R.FailureReason;
  // Some cutpoint invariant must entail the paper's solved template
  // forall k: 0 <= k <= n-1 -> a[k] = 0 under i = n (after first loop).
  const Term *FullyInit =
      parseFormula(TM, "i = n -> (forall k. 0 <= k && k <= n - 1 -> "
                       "a[k] = 0)")
          .get();
  bool Witness = false;
  std::set<LocId> Cuts = computeCutSet(P);
  for (LocId Cut : Cuts) {
    if (Cut == P.entry() || Cut == P.error())
      continue;
    if (entailsWithQuant(TM, Solver, R.Map.at(TM, Cut), FullyInit))
      Witness = true;
  }
  EXPECT_TRUE(Witness) << R.Map.dump(P);
}

TEST_F(SynthFixture, BuggyProgramHasNoSafeMap) {
  // Section 6: for the buggy variant there is no safe invariant map; the
  // synthesizer must fail at every template level.
  Program P = load(testprogs::InitCheckBuggy);
  PathInvResult R = generatePathInvariants(P, Solver);
  EXPECT_FALSE(R.Found);
}

TEST_F(SynthFixture, StraightLineSafety) {
  Program P = load(testprogs::StraightSafe);
  PathInvResult R = generatePathInvariants(P, Solver);
  ASSERT_TRUE(R.Found) << R.FailureReason;
  EXPECT_TRUE(checkInvariantMap(P, R.Map, Solver).Ok);
}

TEST_F(SynthFixture, IntervalBackendOnSimpleLoop) {
  // x counts 0..9; assertion x <= 20 is interval-provable.
  Program P = load(R"(
    proc count(n) {
      var x;
      x = 0;
      while (x < 10) {
        x = x + 1;
      }
      assert(x <= 20);
    }
  )");
  PathInvResult R = generateIntervalInvariants(P, Solver);
  ASSERT_TRUE(R.Found) << R.FailureReason;
}

TEST_F(SynthFixture, IntervalBackendCannotDoRelational) {
  // Intervals cannot prove FORWARD (needs a+b=3i); must fail gracefully.
  Program P = load(testprogs::Forward);
  PathInvResult R = generateIntervalInvariants(P, Solver);
  EXPECT_FALSE(R.Found);
}

TEST_F(SynthFixture, LearningDifferentialPaperPrograms) {
  // Learning-enabled search must agree with the learning-off reference on
  // every paper program: same verdict, same escalation level, and the
  // learned-mode map must independently validate. One persistent learner
  // spans all programs, as in the engines.
  SynthLearner Learner;
  struct Case {
    const char *Name;
    const char *Source;
    uint64_t Budget;
  };
  const Case Cases[] = {
      {"Forward", testprogs::Forward, 25000},
      {"InitCheck", testprogs::InitCheck, 25000},
      {"StraightSafe", testprogs::StraightSafe, 25000},
      {"InitCheckBuggy", testprogs::InitCheckBuggy, 2000},
  };
  uint64_t Learned = 0;
  for (const Case &C : Cases) {
    Program P = load(C.Source);
    PathInvOptions On, Off;
    On.Synth.Learner = &Learner;
    On.Synth.MaxLpChecks = C.Budget;
    Off.Synth.Learning = false;
    Off.Synth.MaxLpChecks = C.Budget;
    PathInvResult ROn = generatePathInvariants(P, Solver, On);
    PathInvResult ROff = generatePathInvariants(P, Solver, Off);
    EXPECT_EQ(ROn.Found, ROff.Found) << C.Name;
    if (ROn.Found && ROff.Found) {
      EXPECT_EQ(ROn.LevelUsed, ROff.LevelUsed) << C.Name;
    }
    if (ROn.Found) {
      EXPECT_TRUE(checkInvariantMap(P, ROn.Map, Solver).Ok) << C.Name;
    }
    Learned += ROn.Learn.CombosDeduped + ROn.Learn.LemmasReused +
               ROn.Learn.Nogoods;
  }
  EXPECT_GT(Learned, 0u) << "sweep never exercised the learning machinery";
}

TEST_F(SynthFixture, LearningDifferentialFuzzSeeds) {
  // Fuzz-generated programs, learning-on vs learning-off under matched
  // budgets. A seed where either mode trips its resource budget proves
  // nothing about verdicts (budget trips are not verdicts) and is skipped;
  // everything else must agree exactly.
  SynthLearner Learner;
  const uint64_t Budget = 3000;
  uint64_t Learned = 0;
  int Compared = 0;
  for (uint64_t Seed = 1; Seed <= 50; ++Seed) {
    fuzz::GeneratedProgram GP = fuzz::generateProgram(Seed);
    TermManager LocalTM;
    auto PE = loadProgram(LocalTM, GP.Source);
    ASSERT_TRUE(PE.hasValue()) << "seed " << Seed << ": " << GP.Source;
    Program P = PE.take();
    SmtSolver LocalSolver{LocalTM};
    PathInvOptions On, Off;
    On.Synth.Learner = &Learner;
    On.Synth.MaxLpChecks = Budget;
    Off.Synth.Learning = false;
    Off.Synth.MaxLpChecks = Budget;
    PathInvResult ROn = generatePathInvariants(P, LocalSolver, On);
    PathInvResult ROff = generatePathInvariants(P, LocalSolver, Off);
    Learned += ROn.Learn.CombosDeduped + ROn.Learn.LemmasReused +
               ROn.Learn.Nogoods;
    if (ROn.ResourceOut || ROff.ResourceOut)
      continue;
    ++Compared;
    EXPECT_EQ(ROn.Found, ROff.Found) << "seed " << Seed;
    if (ROn.Found && ROff.Found) {
      EXPECT_EQ(ROn.LevelUsed, ROff.LevelUsed) << "seed " << Seed;
      EXPECT_TRUE(checkInvariantMap(P, ROn.Map, LocalSolver).Ok)
          << "seed " << Seed;
    }
  }
  EXPECT_GE(Compared, 25) << "budget trips swallowed most of the sweep";
  EXPECT_GT(Learned, 0u);
}

TEST_F(SynthFixture, CheckerRejectsBogusMap) {
  Program P = load(testprogs::StraightSafe);
  InvariantMap Bogus;
  Bogus.Inv[P.error()] = TM.mkFalse();
  // Claim x = 42 everywhere: not inductive.
  SortEnv Env;
  const Term *Claim = parseFormula(TM, "x = 42", Env).get();
  for (LocId Loc = 0; Loc < P.numLocations(); ++Loc)
    if (Loc != P.entry() && Loc != P.error())
      Bogus.Inv[Loc] = Claim;
  EXPECT_FALSE(checkInvariantMap(P, Bogus, Solver).Ok);
}

} // namespace
