//===- tests/logic_test.cpp - Term IR unit tests --------------------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "logic/FormulaParser.h"
#include "logic/LinearExpr.h"
#include "logic/Term.h"
#include "logic/TermPrinter.h"
#include "logic/TermRewrite.h"

#include <gtest/gtest.h>

using namespace pathinv;

namespace {

class TermTest : public ::testing::Test {
protected:
  TermManager TM;
  const Term *X = TM.mkVar("x", Sort::Int);
  const Term *Y = TM.mkVar("y", Sort::Int);
  const Term *Z = TM.mkVar("z", Sort::Int);
  const Term *A = TM.mkVar("a", Sort::ArrayIntInt);
};

TEST_F(TermTest, HashConsing) {
  EXPECT_EQ(TM.mkVar("x", Sort::Int), X);
  EXPECT_EQ(TM.mkAdd(X, Y), TM.mkAdd(X, Y));
  EXPECT_EQ(TM.mkIntConst(5), TM.mkIntConst(5));
  EXPECT_NE(TM.mkIntConst(5), TM.mkIntConst(6));
  EXPECT_NE(TM.mkVar("x", Sort::Int), TM.mkVar("x2", Sort::Int));
  // N-ary flattening and ordering make (x+y)+z == x+(y+z).
  EXPECT_EQ(TM.mkAdd(TM.mkAdd(X, Y), Z), TM.mkAdd(X, TM.mkAdd(Y, Z)));
}

TEST_F(TermTest, ConstantFolding) {
  EXPECT_EQ(TM.mkAdd(TM.mkIntConst(2), TM.mkIntConst(3)), TM.mkIntConst(5));
  EXPECT_EQ(TM.mkMul(TM.mkIntConst(2), TM.mkIntConst(3)), TM.mkIntConst(6));
  EXPECT_EQ(TM.mkMul(TM.mkIntConst(0), X), TM.mkIntConst(0));
  EXPECT_EQ(TM.mkMul(TM.mkIntConst(1), X), X);
  EXPECT_TRUE(TM.mkLe(TM.mkIntConst(2), TM.mkIntConst(3))->isTrue());
  EXPECT_TRUE(TM.mkLt(TM.mkIntConst(3), TM.mkIntConst(3))->isFalse());
  EXPECT_TRUE(TM.mkEq(X, X)->isTrue());
  EXPECT_TRUE(TM.mkLe(X, X)->isTrue());
  EXPECT_TRUE(TM.mkLt(X, X)->isFalse());
}

TEST_F(TermTest, BooleanSimplification) {
  const Term *P = TM.mkLe(X, Y);
  EXPECT_EQ(TM.mkAnd(P, TM.mkTrue()), P);
  EXPECT_TRUE(TM.mkAnd(P, TM.mkFalse())->isFalse());
  EXPECT_EQ(TM.mkOr(P, TM.mkFalse()), P);
  EXPECT_TRUE(TM.mkOr(P, TM.mkTrue())->isTrue());
  EXPECT_EQ(TM.mkAnd(P, P), P);
  EXPECT_EQ(TM.mkNot(TM.mkNot(P)), P);
  // Negation flips inequalities.
  EXPECT_EQ(TM.mkNot(TM.mkLe(X, Y)), TM.mkLt(Y, X));
  EXPECT_EQ(TM.mkNot(TM.mkLt(X, Y)), TM.mkLe(Y, X));
}

TEST_F(TermTest, MulNormalization) {
  // c * (d * t) folds to (c*d) * t.
  const Term *T = TM.mkMul(TM.mkIntConst(2), TM.mkMul(TM.mkIntConst(3), X));
  EXPECT_EQ(T, TM.mkMul(TM.mkIntConst(6), X));
}

TEST_F(TermTest, LiteralClassification) {
  const Term *Atom = TM.mkEq(X, Y);
  EXPECT_TRUE(Atom->isAtom());
  EXPECT_TRUE(Atom->isLiteral());
  EXPECT_TRUE(TM.mkNot(Atom)->isLiteral());
  EXPECT_FALSE(TM.mkAnd(Atom, TM.mkLe(X, Y))->isAtom());
}

TEST_F(TermTest, ForallConstruction) {
  const Term *K = TM.mkVar("k", Sort::Int);
  const Term *Body = TM.mkEq(TM.mkSelect(A, K), TM.mkIntConst(0));
  const Term *Q = TM.mkForall(K, Body);
  EXPECT_EQ(Q->kind(), TermKind::Forall);
  EXPECT_TRUE(containsQuantifier(Q));
  EXPECT_FALSE(containsQuantifier(Body));
}

TEST_F(TermTest, LinearExprDecomposition) {
  // 2x + 3y - x + 7 ==> x + 3y + 7
  const Term *T = TM.mkAdd({TM.mkMul(TM.mkIntConst(2), X),
                            TM.mkMul(TM.mkIntConst(3), Y), TM.mkNeg(X),
                            TM.mkIntConst(7)});
  auto L = LinearExpr::fromTerm(T);
  ASSERT_TRUE(L.has_value());
  EXPECT_EQ(L->coefficientOf(X), Rational(1));
  EXPECT_EQ(L->coefficientOf(Y), Rational(3));
  EXPECT_EQ(L->constant(), Rational(7));
  EXPECT_EQ(L->numAtoms(), 2u);
}

TEST_F(TermTest, LinearExprRejectsNonlinear) {
  EXPECT_FALSE(LinearExpr::fromTerm(TM.mkMul(X, Y)).has_value());
  // But x * 3 is linear.
  EXPECT_TRUE(LinearExpr::fromTerm(TM.mkMul(X, TM.mkIntConst(3))).has_value());
}

TEST_F(TermTest, LinearExprTreatsSelectAsAtom) {
  const Term *Read = TM.mkSelect(A, X);
  const Term *T = TM.mkAdd(Read, TM.mkMul(TM.mkIntConst(2), X));
  auto L = LinearExpr::fromTerm(T);
  ASSERT_TRUE(L.has_value());
  EXPECT_EQ(L->coefficientOf(Read), Rational(1));
  EXPECT_EQ(L->coefficientOf(X), Rational(2));
}

TEST_F(TermTest, LinearExprRoundTrip) {
  const Term *T = TM.mkAdd({TM.mkMul(TM.mkIntConst(2), X), Y,
                            TM.mkIntConst(-3)});
  auto L = LinearExpr::fromTerm(T);
  ASSERT_TRUE(L.has_value());
  auto L2 = LinearExpr::fromTerm(L->toTerm(TM));
  ASSERT_TRUE(L2.has_value());
  EXPECT_EQ(*L, *L2);
}

TEST_F(TermTest, CanonicalAtomNormalizesScaling) {
  // 2x <= 4y   and   x <= 2y   and   3x - 6y <= 0   are one canonical atom.
  LinearAtom A1{*LinearExpr::fromTerm(
                    TM.mkSub(TM.mkMul(TM.mkIntConst(2), X),
                             TM.mkMul(TM.mkIntConst(4), Y))),
                RelKind::Le};
  LinearAtom A2{*LinearExpr::fromTerm(
                    TM.mkSub(X, TM.mkMul(TM.mkIntConst(2), Y))),
                RelKind::Le};
  EXPECT_EQ(A1.toTerm(TM), A2.toTerm(TM));
}

TEST_F(TermTest, CanonicalAtomEqualitySignInvariance) {
  // x - y = 0 and y - x = 0 canonicalize identically.
  LinearAtom A1{*LinearExpr::fromTerm(TM.mkSub(X, Y)), RelKind::Eq};
  LinearAtom A2{*LinearExpr::fromTerm(TM.mkSub(Y, X)), RelKind::Eq};
  EXPECT_EQ(A1.toTerm(TM), A2.toTerm(TM));
}

TEST_F(TermTest, DecomposeAtom) {
  const Term *Atom = TM.mkLe(TM.mkAdd(X, Y), TM.mkIntConst(5));
  auto LA = decomposeAtom(Atom);
  ASSERT_TRUE(LA.has_value());
  EXPECT_EQ(LA->Rel, RelKind::Le);
  EXPECT_EQ(LA->Expr.coefficientOf(X), Rational(1));
  EXPECT_EQ(LA->Expr.constant(), Rational(-5));
}

TEST_F(TermTest, SubstitutionReplacesSubterms) {
  const Term *T = TM.mkLe(TM.mkAdd(X, Y), Z);
  TermMap Subst;
  Subst[X] = TM.mkIntConst(1);
  Subst[Y] = TM.mkIntConst(2);
  const Term *R = substitute(TM, T, Subst);
  EXPECT_EQ(R, TM.mkLe(TM.mkIntConst(3), Z));
}

TEST_F(TermTest, SubstitutionRespectsBoundVars) {
  const Term *K = TM.mkVar("k", Sort::Int);
  const Term *Q =
      TM.mkForall(K, TM.mkLe(K, X)); // forall k. k <= x
  TermMap Subst;
  Subst[K] = TM.mkIntConst(9); // Must not replace the bound k.
  Subst[X] = Y;
  const Term *R = substitute(TM, Q, Subst);
  EXPECT_EQ(R, TM.mkForall(K, TM.mkLe(K, Y)));
}

TEST_F(TermTest, SubstituteWholeSelect) {
  const Term *Read = TM.mkSelect(A, X);
  const Term *V = TM.mkVar("v", Sort::Int);
  TermMap Subst;
  Subst[Read] = V;
  const Term *T = TM.mkEq(Read, TM.mkIntConst(0));
  EXPECT_EQ(substitute(TM, T, Subst), TM.mkEq(V, TM.mkIntConst(0)));
}

TEST_F(TermTest, RenameVars) {
  const Term *T = TM.mkLe(X, Y);
  const Term *R = renameVars(TM, T, [&](const Term *V) -> const Term * {
    if (V == X)
      return TM.mkVar("x'", Sort::Int);
    return nullptr;
  });
  EXPECT_EQ(R, TM.mkLe(TM.mkVar("x'", Sort::Int), Y));
}

TEST_F(TermTest, CollectFreeVars) {
  const Term *K = TM.mkVar("k", Sort::Int);
  const Term *Q = TM.mkForall(
      K, TM.mkImplies(TM.mkLe(TM.mkIntConst(0), K),
                      TM.mkEq(TM.mkSelect(A, K), X)));
  TermSet Vars;
  collectFreeVars(Q, Vars);
  EXPECT_TRUE(Vars.count(X));
  EXPECT_TRUE(Vars.count(A));
  EXPECT_FALSE(Vars.count(K)) << "bound variable leaked";
}

TEST_F(TermTest, CollectAtomsAndSelects) {
  const Term *Read = TM.mkSelect(A, X);
  const Term *F = TM.mkAnd(TM.mkLe(X, Y), TM.mkEq(Read, TM.mkIntConst(0)));
  TermSet Atoms, Selects;
  collectAtoms(F, Atoms);
  collectSelects(F, Selects);
  EXPECT_EQ(Atoms.size(), 2u);
  EXPECT_EQ(Selects.size(), 1u);
  EXPECT_TRUE(Selects.count(Read));
}

TEST_F(TermTest, FlattenConjuncts) {
  const Term *F = TM.mkAnd({TM.mkLe(X, Y), TM.mkAnd(TM.mkLe(Y, Z),
                                                    TM.mkLe(Z, X))});
  std::vector<const Term *> Conjuncts;
  flattenConjuncts(F, Conjuncts);
  EXPECT_EQ(Conjuncts.size(), 3u);
}

// --- Printer / parser round trips -----------------------------------------

struct RoundTripCase {
  const char *Input;
};

class ParserRoundTripTest : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(ParserRoundTripTest, ParsePrintParse) {
  TermManager TM;
  SortEnv Env;
  auto First = parseFormula(TM, GetParam().Input, Env);
  ASSERT_TRUE(First.hasValue()) << First.error().render();
  std::string Printed = printTerm(First.get());
  SortEnv Env2 = Env;
  auto Second = parseFormula(TM, Printed, Env2);
  ASSERT_TRUE(Second.hasValue())
      << "reparse of '" << Printed << "': " << Second.error().render();
  EXPECT_EQ(First.get(), Second.get()) << "round trip changed: " << Printed;
}

INSTANTIATE_TEST_SUITE_P(
    Formulas, ParserRoundTripTest,
    ::testing::Values(
        RoundTripCase{"x + y <= 3"}, RoundTripCase{"a + b = 3*i"},
        RoundTripCase{"x < y && y < z"},
        RoundTripCase{"x = 1 || y = 2 || z = 3"},
        RoundTripCase{"!(x = y)"}, RoundTripCase{"x != y"},
        RoundTripCase{"i < n -> a[i] = 0"},
        RoundTripCase{"forall k. 0 <= k && k <= i - 1 -> a[k] = 0"},
        RoundTripCase{"2*x - 3*y + 4 <= z"},
        RoundTripCase{"true"}, RoundTripCase{"false"},
        RoundTripCase{"x - y - z <= 0 - 4"},
        RoundTripCase{"a[i + 1] = a[j] + 2"},
        RoundTripCase{"f(x, y) <= f(y, x)"},
        RoundTripCase{"(x <= y || y <= z) && !(z = x)"}));

TEST(ParserTest, ParseErrors) {
  TermManager TM;
  EXPECT_FALSE(parseFormula(TM, "x +").hasValue());
  EXPECT_FALSE(parseFormula(TM, "x <= ").hasValue());
  EXPECT_FALSE(parseFormula(TM, "&& y").hasValue());
  EXPECT_FALSE(parseFormula(TM, "x").hasValue()) << "term is not a formula";
  EXPECT_FALSE(parseFormula(TM, "(x <= y").hasValue());
  EXPECT_FALSE(parseFormula(TM, "x <= y extra").hasValue());
  EXPECT_FALSE(parseFormula(TM, "x && y").hasValue())
      << "int operands to '&&'";
}

TEST(ParserTest, SortInference) {
  TermManager TM;
  SortEnv Env;
  auto F = parseFormula(TM, "a[i] = 0 && i <= n", Env);
  ASSERT_TRUE(F.hasValue());
  EXPECT_EQ(Env["a"], Sort::ArrayIntInt);
  EXPECT_EQ(Env["i"], Sort::Int);
  EXPECT_EQ(Env["n"], Sort::Int);
  // Using 'a' as a scalar afterwards is an error.
  EXPECT_FALSE(parseFormula(TM, "a[i] = 0 && a <= n").hasValue());
}

TEST(ParserTest, OperatorPrecedence) {
  TermManager TM;
  auto F = parseFormula(TM, "x = 1 && y = 2 || z = 3");
  ASSERT_TRUE(F.hasValue());
  // && binds tighter than ||.
  EXPECT_EQ(F.get()->kind(), TermKind::Or);
  auto G = parseFormula(TM, "x <= 1 + 2*y");
  ASSERT_TRUE(G.hasValue());
  auto LA = decomposeAtom(G.get());
  ASSERT_TRUE(LA.has_value());
  TermManager TM2; // arrow is right-associative and loosest
  auto H = parseFormula(TM2, "x = 1 -> y = 2 -> z = 3");
  ASSERT_TRUE(H.hasValue());
}

TEST(ParserTest, IntTermParsing) {
  TermManager TM;
  SortEnv Env;
  auto T = parseIntTerm(TM, "2*i + n - 1", Env);
  ASSERT_TRUE(T.hasValue());
  auto L = LinearExpr::fromTerm(T.get());
  ASSERT_TRUE(L.has_value());
  EXPECT_EQ(L->coefficientOf(TM.mkVar("i", Sort::Int)), Rational(2));
  EXPECT_EQ(L->constant(), Rational(-1));
  EXPECT_FALSE(parseIntTerm(TM, "x <= y", Env).hasValue());
}

} // namespace
