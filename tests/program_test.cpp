//===- tests/program_test.cpp - Program/lang/interp tests -----------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"
#include "interp/Interpreter.h"
#include "lang/Lower.h"
#include "lang/Parser.h"
#include "logic/TermPrinter.h"
#include "program/CutSet.h"
#include "program/PathFormula.h"
#include "smt/SmtSolver.h"

#include <gtest/gtest.h>

using namespace pathinv;

namespace {

TEST(ProgramTest, VariablePriming) {
  TermManager TM;
  const Term *X = TM.mkVar("x", Sort::Int);
  const Term *XP = primedVar(TM, X);
  EXPECT_EQ(XP->name(), "x'");
  EXPECT_TRUE(isPrimedVar(XP));
  EXPECT_FALSE(isPrimedVar(X));
  EXPECT_EQ(unprimedVar(TM, XP), X);
  EXPECT_EQ(unprimedVar(TM, X), X);
  EXPECT_EQ(ssaVar(TM, X, 3)->name(), "x@3");
}

TEST(ProgramTest, AssignBuildsFrame) {
  TermManager TM;
  const Term *X = TM.mkVar("x", Sort::Int);
  const Term *Y = TM.mkVar("y", Sort::Int);
  Program P(TM, {X, Y});
  const Term *Rel = P.mkAssign(X, TM.mkAdd(X, TM.mkIntConst(1)));
  // Must constrain x' = x + 1 and y' = y.
  std::vector<const Term *> Conjuncts;
  flattenConjuncts(Rel, Conjuncts);
  EXPECT_EQ(Conjuncts.size(), 2u);
  SmtSolver Solver(TM);
  EXPECT_TRUE(Solver.entails(
      Rel, TM.mkEq(primedVar(TM, Y), Y)));
  EXPECT_TRUE(Solver.entails(
      Rel, TM.mkEq(primedVar(TM, X), TM.mkAdd(X, TM.mkIntConst(1)))));
}

TEST(LangTest, ParseErrors) {
  TermManager TM;
  EXPECT_FALSE(parseProc(TM, "proc f( { }").hasValue());
  EXPECT_FALSE(parseProc(TM, "proc f() { x = 1; }").hasValue())
      << "undeclared variable";
  EXPECT_FALSE(parseProc(TM, "proc f(x) { var x; }").hasValue())
      << "duplicate declaration";
  EXPECT_FALSE(parseProc(TM, "proc f(x) { x = 1 }").hasValue())
      << "missing semicolon";
  EXPECT_FALSE(parseProc(TM, "proc f(a) { a[0] = 1; }").hasValue())
      << "indexing a scalar";
  EXPECT_FALSE(parseProc(TM, "proc f(a[]) { a = 1; }").hasValue())
      << "assigning a whole array";
  EXPECT_TRUE(parseProc(TM, "proc f(x) { skip; }").hasValue());
}

TEST(LangTest, ParseForwardStructure) {
  TermManager TM;
  auto Proc = parseProc(TM, testprogs::Forward);
  ASSERT_TRUE(Proc.hasValue()) << Proc.error().render();
  EXPECT_EQ(Proc.get().Name, "forward");
  EXPECT_EQ(Proc.get().Params.size(), 1u);
  EXPECT_EQ(Proc.get().Locals.size(), 3u);
}

TEST(LangTest, LowerForwardShape) {
  TermManager TM;
  auto P = loadProgram(TM, testprogs::Forward);
  ASSERT_TRUE(P.hasValue()) << P.error().render();
  const Program &Prog = P.get();
  EXPECT_EQ(Prog.variables().size(), 4u);
  EXPECT_GE(Prog.numLocations(), 8);
  // Exactly one cycle through the loop head; cutset = {entry, error, head}.
  std::set<LocId> Cuts = computeCutSet(Prog);
  EXPECT_EQ(Cuts.size(), 3u);
}

TEST(LangTest, CommentsAndNondet) {
  TermManager TM;
  auto P = loadProgram(TM, R"(
    proc f(n) {  // header comment
      var x;
      x = nondet();        // havoc
      if (nondet()) { x = 0; } // nondet branch
      while (*) { x = x + 1; }
      assert(x >= 0 || x < 0);
    }
  )");
  ASSERT_TRUE(P.hasValue()) << P.error().render();
}

TEST(PathFormulaTest, SsaRenamesPerStep) {
  TermManager TM;
  const Term *X = TM.mkVar("x", Sort::Int);
  Program P(TM, {X});
  LocId L0 = P.addLocation("L0");
  LocId L1 = P.addLocation("L1");
  LocId LE = P.addLocation("LE");
  P.setEntry(L0);
  P.setError(LE);
  int T0 = P.addTransition(L0, P.mkAssign(X, TM.mkAdd(X, TM.mkIntConst(1))),
                           L1);
  int T1 = P.addTransition(L1, P.mkAssign(X, TM.mkAdd(X, TM.mkIntConst(1))),
                           L0);
  PathFormula PF = buildPathFormula(P, {T0, T1});
  ASSERT_EQ(PF.StepFormulas.size(), 2u);
  EXPECT_EQ(PF.InitialVars.at(X), ssaVar(TM, X, 0));
  EXPECT_EQ(PF.FinalVars.at(X), ssaVar(TM, X, 2));
  // x@2 = x@0 + 2 must be entailed.
  SmtSolver Solver(TM);
  EXPECT_TRUE(Solver.entails(
      PF.formula(TM),
      TM.mkEq(ssaVar(TM, X, 2),
              TM.mkAdd(ssaVar(TM, X, 0), TM.mkIntConst(2)))));
}

/// Finds some path to the error location with at most \p MaxLen steps
/// (BFS) — used to build test paths.
Path findErrorPath(const Program &P, size_t MaxLen = 64) {
  struct Node {
    LocId Loc;
    Path Steps;
  };
  std::vector<Node> Queue{{P.entry(), {}}};
  for (size_t Head = 0; Head < Queue.size(); ++Head) {
    Node Cur = Queue[Head];
    if (Cur.Loc == P.error())
      return Cur.Steps;
    if (Cur.Steps.size() >= MaxLen)
      continue;
    for (int TransIdx : P.successorsOf(Cur.Loc)) {
      Node Next = Cur;
      Next.Steps.push_back(TransIdx);
      Next.Loc = P.transition(TransIdx).To;
      Queue.push_back(std::move(Next));
    }
  }
  return {};
}

TEST(PathFormulaTest, ForwardCounterexampleIsInfeasible) {
  // The shortest error path of FORWARD traverses the loop zero times
  // ([i >= n] with n >= 0, i = 0 then a+b != 3n fails only if n > 0 —
  // infeasible); one loop iteration reproduces the Section 2.1 formula.
  TermManager TM;
  auto P = loadProgram(TM, testprogs::Forward);
  ASSERT_TRUE(P.hasValue());
  Path Pi = findErrorPath(P.get());
  ASSERT_FALSE(Pi.empty());
  PathFormula PF = buildPathFormula(P.get(), Pi);
  SmtSolver Solver(TM);
  EXPECT_EQ(Solver.checkSat(PF.formula(TM)), SmtSolver::Status::Unsat);
}

TEST(PathFormulaTest, BuggyProgramPathIsFeasibleAndReplays) {
  TermManager TM;
  auto P = loadProgram(TM, testprogs::ScalarBug);
  ASSERT_TRUE(P.hasValue());
  // Enumerate error paths; at least one must be feasible.
  SmtSolver Solver(TM);
  Path Feasible;
  for (size_t Len = 1; Len <= 8 && Feasible.empty(); ++Len) {
    // findErrorPath returns the shortest; extend search by trying all.
  }
  // Direct approach: BFS collecting all error paths up to depth 10.
  std::vector<Path> AllPaths;
  struct Node {
    LocId Loc;
    Path Steps;
  };
  std::vector<Node> Queue{{P.get().entry(), {}}};
  for (size_t Head = 0; Head < Queue.size(); ++Head) {
    Node Cur = Queue[Head];
    if (Cur.Loc == P.get().error()) {
      AllPaths.push_back(Cur.Steps);
      continue;
    }
    if (Cur.Steps.size() >= 10)
      continue;
    for (int TransIdx : P.get().successorsOf(Cur.Loc)) {
      Node Next = Cur;
      Next.Steps.push_back(TransIdx);
      Next.Loc = P.get().transition(TransIdx).To;
      Queue.push_back(std::move(Next));
    }
  }
  ASSERT_FALSE(AllPaths.empty());
  bool FoundFeasible = false;
  for (const Path &Pi : AllPaths) {
    PathFormula PF = buildPathFormula(P.get(), Pi);
    if (Solver.checkSat(PF.formula(TM)) != SmtSolver::Status::Sat)
      continue;
    FoundFeasible = true;
    // Replay concretely: the model must drive execution along the path.
    ReplayResult RR = replayFromModel(P.get(), Pi, Solver.model());
    EXPECT_TRUE(RR.Feasible) << "failed at step " << RR.FailedStep;
    // The witness input must indeed exceed 3 (n > 3 branch).
    const Term *N = TM.mkVar("n", Sort::Int);
    EXPECT_GT(RR.States.front().scalar(N), Rational(3));
  }
  EXPECT_TRUE(FoundFeasible);
}

TEST(InterpTest, EvalBasics) {
  TermManager TM;
  ConcreteState S;
  const Term *X = TM.mkVar("x", Sort::Int);
  const Term *A = TM.mkVar("a", Sort::ArrayIntInt);
  S.Scalars[X] = Rational(5);
  ArrayValue AV;
  AV.write(5, Rational(42));
  S.Arrays[A] = AV;
  EXPECT_EQ(evalInt(TM.mkAdd(X, TM.mkIntConst(2)), S), Rational(7));
  EXPECT_EQ(evalInt(TM.mkSelect(A, X), S), Rational(42));
  EXPECT_EQ(evalInt(TM.mkSelect(A, TM.mkIntConst(0)), S), Rational(0))
      << "unwritten cells default to zero";
  EXPECT_TRUE(evalBool(TM.mkLt(X, TM.mkIntConst(6)), S));
  EXPECT_FALSE(evalBool(TM.mkNe(X, TM.mkIntConst(5)), S));
  EXPECT_TRUE(evalBool(
      TM.mkOr(TM.mkEq(X, TM.mkIntConst(1)), TM.mkLe(X, TM.mkIntConst(5))),
      S));
}

TEST(InterpTest, ReplayRespectsGuards) {
  TermManager TM;
  const Term *X = TM.mkVar("x", Sort::Int);
  Program P(TM, {X});
  LocId L0 = P.addLocation("L0");
  LocId L1 = P.addLocation("L1");
  LocId LE = P.addLocation("LE");
  P.setEntry(L0);
  P.setError(LE);
  int T0 = P.addTransition(L0, P.mkAssume(TM.mkLt(X, TM.mkIntConst(3))),
                           L1);
  ConcreteState Init;
  Init.Scalars[X] = Rational(5);
  ReplayResult RR = replayPath(P, {T0}, Init, {});
  EXPECT_FALSE(RR.Feasible);
  EXPECT_EQ(RR.FailedStep, 0);
  Init.Scalars[X] = Rational(2);
  RR = replayPath(P, {T0}, Init, {});
  EXPECT_TRUE(RR.Feasible);
}

TEST(CutSetTest, StraightLineHasNoLoopCuts) {
  TermManager TM;
  auto P = loadProgram(TM, testprogs::StraightSafe);
  ASSERT_TRUE(P.hasValue());
  std::set<LocId> Cuts = computeCutSet(P.get());
  // Only entry and error.
  EXPECT_EQ(Cuts.size(), 2u);
}

TEST(CutSetTest, InitcheckHasTwoLoopCuts) {
  TermManager TM;
  auto P = loadProgram(TM, testprogs::InitCheck);
  ASSERT_TRUE(P.hasValue());
  std::set<LocId> Cuts = computeCutSet(P.get());
  EXPECT_EQ(Cuts.size(), 4u) << "entry, error, two loop heads";
}

TEST(CutSetTest, CutToCutPathsCoverAllTransitions) {
  TermManager TM;
  auto P = loadProgram(TM, testprogs::InitCheck);
  ASSERT_TRUE(P.hasValue());
  std::set<LocId> Cuts = computeCutSet(P.get());
  auto Paths = cutToCutPaths(P.get(), Cuts);
  std::set<int> Covered;
  for (const auto &Segment : Paths)
    Covered.insert(Segment.begin(), Segment.end());
  EXPECT_EQ(static_cast<int>(Covered.size()), P.get().numTransitions());
}

} // namespace
