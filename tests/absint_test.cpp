//===- tests/absint_test.cpp - Interval domain tests -----------------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"
#include "absint/Interval.h"
#include "lang/Lower.h"

#include <gtest/gtest.h>

using namespace pathinv;

namespace {

TEST(IntervalTest, LatticeOps) {
  Interval A{Rational(0), Rational(5)};
  Interval B{Rational(3), Rational(9)};
  Interval J = A.join(B);
  EXPECT_EQ(J.Lo, Rational(0));
  EXPECT_EQ(J.Hi, Rational(9));
  Interval M = A.meet(B);
  EXPECT_EQ(M.Lo, Rational(3));
  EXPECT_EQ(M.Hi, Rational(5));
  Interval Top = Interval::top();
  EXPECT_TRUE(A.join(Top).isTop());
  EXPECT_EQ(A.meet(Top).Hi, Rational(5));
}

TEST(IntervalTest, WideningJumpsToInfinity) {
  Interval Old{Rational(0), Rational(5)};
  Interval New{Rational(0), Rational(6)};
  Interval W = Old.widen(New);
  EXPECT_EQ(W.Lo, Rational(0)) << "stable bound kept";
  EXPECT_FALSE(W.Hi.has_value()) << "unstable bound widened";
}

TEST(IntervalTest, ArithmeticScale) {
  Interval A{Rational(1), Rational(3)};
  Interval S = A.scale(Rational(-2));
  EXPECT_EQ(S.Lo, Rational(-6));
  EXPECT_EQ(S.Hi, Rational(-2));
  Interval Sum = A + Interval{Rational(10), Rational(20)};
  EXPECT_EQ(Sum.Lo, Rational(11));
  EXPECT_EQ(Sum.Hi, Rational(23));
}

TEST(IntervalTest, AnalyzeBoundedLoop) {
  TermManager TM;
  auto P = loadProgram(TM, R"(
    proc count(n) {
      var x;
      x = 0;
      while (x < 10) {
        x = x + 1;
      }
      assert(x >= 10);
    }
  )");
  ASSERT_TRUE(P.hasValue());
  IntervalAnalysisResult R = analyzeIntervals(P.get());
  // The error location must be unreachable (x = 10 exactly at exit).
  EXPECT_TRUE(R.States[P.get().error()].Bottom);
}

TEST(IntervalTest, AnalyzeDetectsPossibleFailure) {
  TermManager TM;
  auto P = loadProgram(TM, testprogs::ScalarBug);
  ASSERT_TRUE(P.hasValue());
  IntervalAnalysisResult R = analyzeIntervals(P.get());
  EXPECT_FALSE(R.States[P.get().error()].Bottom);
}

TEST(IntervalTest, GuardRefinement) {
  TermManager TM;
  auto P = loadProgram(TM, R"(
    proc guard(n) {
      var x;
      assume(n >= 0 && n <= 5);
      x = n;
      assert(x <= 5);
    }
  )");
  ASSERT_TRUE(P.hasValue());
  IntervalAnalysisResult R = analyzeIntervals(P.get());
  EXPECT_TRUE(R.States[P.get().error()].Bottom);
}

} // namespace
