//===- tests/smt_bnb_test.cpp - Scoped branch-and-bound tests -------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Differential coverage for the theory solver's scoped branch-and-bound:
// randomized integer/disequality conjunctions solved incrementally against
// a retained base under push/pop storms, cross-checked (verdicts, models,
// and cores) against fresh from-scratch solves; a budget-exhaustion sweep
// proving the scratch fallback still answers soundly; and a validity check
// on every branch-derived bound lemma the search surfaces.
//
//===----------------------------------------------------------------------===//

#include "core/Resource.h"
#include "logic/LinearExpr.h"
#include "smt/SmtSolver.h"
#include "smt/SolverContext.h"
#include "smt/TheoryConj.h"

#include <gtest/gtest.h>

#include <random>

using namespace pathinv;

namespace {

using ModelMap = std::map<const Term *, Rational, TermIdLess>;

/// Evaluates a linear integer term under atom values (absent atoms read as
/// zero — the completion the theory solver itself uses).
Rational evalTerm(const Term *T, const ModelMap &M) {
  std::optional<LinearExpr> L = LinearExpr::fromTerm(T);
  EXPECT_TRUE(L.has_value());
  Rational V = L->constant();
  for (const auto &[Atom, Coeff] : L->coefficients()) {
    auto It = M.find(Atom);
    if (It != M.end())
      V.addMul(Coeff, It->second);
  }
  return V;
}

/// True when the literal holds under the model.
bool literalHolds(const Term *Lit, const ModelMap &M) {
  if (Lit->isTrue())
    return true;
  if (Lit->isFalse())
    return false;
  bool Negated = Lit->kind() == TermKind::Not;
  const Term *Atom = Negated ? Lit->operand(0) : Lit;
  Rational A = evalTerm(Atom->operand(0), M);
  Rational B = evalTerm(Atom->operand(1), M);
  bool Holds = false;
  switch (Atom->kind()) {
  case TermKind::Eq:
    Holds = A == B;
    break;
  case TermKind::Le:
    Holds = A <= B;
    break;
  case TermKind::Lt:
    Holds = A < B;
    break;
  default:
    ADD_FAILURE() << "unexpected literal kind";
    break;
  }
  return Negated ? !Holds : Holds;
}

/// Literal generator biased toward split-requiring shapes: equalities with
/// even coefficients (fractional rational vertices), disequalities between
/// variables and against constants, plus ordinary bounds to keep a healthy
/// SAT/UNSAT mix. Purely arithmetic — no reads or applications — so the
/// scoped search never needs a functional-consistency split.
class LiteralGen {
public:
  LiteralGen(TermManager &TM, uint64_t Seed) : TM(TM), Rng(Seed) {
    for (int I = 0; I < 4; ++I)
      Vars.push_back(TM.mkVar("v" + std::to_string(I), Sort::Int));
  }

  const Term *linearSum() {
    std::vector<const Term *> Summands;
    int NumTerms = 1 + static_cast<int>(Rng() % 3);
    for (int I = 0; I < NumTerms; ++I) {
      int64_t Coeff = static_cast<int64_t>(Rng() % 5) - 2;
      if (Coeff == 0)
        Coeff = 2; // Even coefficients breed fractional vertices.
      Summands.push_back(
          TM.mkMul(TM.mkIntConst(Coeff), Vars[Rng() % Vars.size()]));
    }
    Summands.push_back(TM.mkIntConst(static_cast<int64_t>(Rng() % 9) - 4));
    return TM.mkAdd(std::move(Summands));
  }

  const Term *next() {
    switch (Rng() % 6) {
    case 0: // Variable disequality.
      return TM.mkNot(TM.mkEq(Vars[Rng() % Vars.size()],
                              Vars[Rng() % Vars.size()]));
    case 1: // Constant disequality.
      return TM.mkNot(TM.mkEq(Vars[Rng() % Vars.size()],
                              TM.mkIntConst(static_cast<int64_t>(Rng() % 7) -
                                            3)));
    case 2: // Parity-style equality: even sum pinned to a random value.
      return TM.mkEq(linearSum(),
                     TM.mkIntConst(static_cast<int64_t>(Rng() % 7) - 3));
    case 3:
      return TM.mkLt(linearSum(), Vars[Rng() % Vars.size()]);
    default:
      return TM.mkLe(linearSum(),
                     TM.mkIntConst(static_cast<int64_t>(Rng() % 15) - 3));
    }
  }

  std::vector<const Term *> conjunction(size_t N) {
    std::vector<const Term *> Out;
    for (size_t I = 0; I < N; ++I)
      Out.push_back(next());
    return Out;
  }

  /// Box bounds for every variable. Unbounded split instances can make
  /// branch-and-bound (scoped or from-scratch) chase a fractional ray
  /// forever; a box keeps every instance finitely branchable, matching
  /// the bounded shapes real program queries take.
  std::vector<const Term *> boxBounds(int64_t Radius) {
    std::vector<const Term *> Out;
    for (const Term *V : Vars) {
      Out.push_back(TM.mkLe(TM.mkIntConst(-Radius), V));
      Out.push_back(TM.mkLe(V, TM.mkIntConst(Radius)));
    }
    return Out;
  }

  uint64_t raw() { return Rng(); }

private:
  TermManager &TM;
  std::mt19937_64 Rng;
  std::vector<const Term *> Vars;
};

/// Runs a push/pop storm on \p Inc, differentially checking every
/// solveWithBase() verdict against a fresh from-scratch solve of
/// base ++ query. SAT answers must produce integral models satisfying
/// every literal; UNSAT answers must produce cores that are unsat alone.
void runStorm(TermManager &TM, TheoryConjSolver &Inc, uint64_t Seed,
              int Rounds) {
  LiteralGen Gen(TM, Seed);
  std::vector<std::vector<const Term *>> BaseScopes;

  // Depth-0 base: box bounds, never popped (storm pops only match storm
  // pushes).
  std::vector<const Term *> Box = Gen.boxBounds(10);
  for (const Term *L : Box)
    Inc.assertBase(L);

  for (int Round = 0; Round < Rounds; ++Round) {
    switch (Gen.raw() % 4) {
    case 0: { // Push a scope of fresh base literals.
      Inc.pushBase();
      BaseScopes.emplace_back(Gen.conjunction(1 + Gen.raw() % 3));
      for (const Term *L : BaseScopes.back())
        Inc.assertBase(L);
      break;
    }
    case 1: // Pop the innermost scope.
      if (!BaseScopes.empty()) {
        Inc.popBase();
        BaseScopes.pop_back();
      }
      break;
    default:
      break; // Query against the unchanged base: the cached-tableau case.
    }

    std::vector<const Term *> Query = Gen.conjunction(2 + Gen.raw() % 3);
    ConjResult R = Inc.solveWithBase(Query);

    std::vector<const Term *> All = Box;
    for (const auto &Scope : BaseScopes)
      All.insert(All.end(), Scope.begin(), Scope.end());
    size_t NumBase = All.size();
    All.insert(All.end(), Query.begin(), Query.end());
    TheoryConjSolver Fresh(TM);
    ConjResult FR = Fresh.solve(All);
    ASSERT_EQ(R.IsSat, FR.IsSat) << "verdict diverged in round " << Round;

    if (R.IsSat) {
      for (const auto &[Atom, Value] : R.Model) {
        (void)Atom;
        ASSERT_TRUE(Value.isInteger())
            << "non-integral model value in round " << Round;
      }
      for (const Term *L : All)
        ASSERT_TRUE(literalHolds(L, R.Model))
            << "model violates a literal in round " << Round;
    } else {
      // The reported core (plus the base, when flagged) must be unsat on
      // its own.
      std::vector<const Term *> CoreLits;
      if (R.BaseInCore)
        CoreLits.assign(All.begin(), All.begin() + NumBase);
      for (int I : R.Core) {
        ASSERT_GE(I, 0);
        ASSERT_LT(static_cast<size_t>(I), Query.size());
        CoreLits.push_back(Query[I]);
      }
      TheoryConjSolver CoreCheck(TM);
      ASSERT_FALSE(CoreCheck.solve(CoreLits).IsSat)
          << "core is not unsat alone in round " << Round;
    }
  }
}

TEST(SmtBnbTest, ScopedSearchMatchesFromScratchUnderStorm) {
  TermManager TM;
  TheoryConjSolver Inc(TM);
  runStorm(TM, Inc, 0xb4b5eed1ull, 250);
  // Purely arithmetic literals: the scoped search must never abandon the
  // cached tableau, and the storm is split-heavy enough to branch.
  EXPECT_EQ(Inc.numScratchFallbacks(), 0u);
  EXPECT_GT(Inc.numBnbNodes(), 0u);
  EXPECT_GT(Inc.numBaseReuses(), 0u);
}

TEST(SmtBnbTest, BudgetExhaustionFallsBackSoundly) {
  TermManager TM;
  TheoryConjSolver Tiny(TM);
  // One branch node, depth one: any real split exhausts the budget and
  // must take the scratch path — with identical verdicts/models/cores.
  Tiny.setBnbBudgets(1, 1);
  runStorm(TM, Tiny, 0xdeadf00dull, 150);
  EXPECT_GT(Tiny.numScratchFallbacks(), 0u);

  TermManager TM2;
  TheoryConjSolver Disabled(TM2);
  // A zero node budget disables the scoped search outright (the bench
  // harness's reference mode). Still sound, still complete.
  Disabled.setBnbBudgets(0, 0);
  runStorm(TM2, Disabled, 0xfeedbeefull, 100);
  EXPECT_GT(Disabled.numScratchFallbacks(), 0u);
  EXPECT_EQ(Disabled.numBnbNodes(), 0u);
}

TEST(SmtBnbTest, RandomCancellationLeavesSolverReusable) {
  // Mid-scope interruption storm: every query runs under a fresh
  // ResourceController with a tiny randomized pivot or branch-node
  // budget, so cancellation lands at arbitrary checkpoints — mid-pivot
  // sequence, mid-branch, inside the scoped cleanup. After every query
  // (interrupted or not) the same solver must answer the identical query
  // cleanly and agree with a from-scratch solve, proving the cached base
  // tableau and scope stack survived the unwind.
  TermManager TM;
  TheoryConjSolver Inc(TM);
  LiteralGen Gen(TM, 0x5eedc0deull);
  std::vector<std::vector<const Term *>> BaseScopes;

  std::vector<const Term *> Box = Gen.boxBounds(10);
  for (const Term *L : Box)
    Inc.assertBase(L);

  int Interrupts = 0;
  for (int Round = 0; Round < 200; ++Round) {
    switch (Gen.raw() % 4) {
    case 0: {
      Inc.pushBase();
      BaseScopes.emplace_back(Gen.conjunction(1 + Gen.raw() % 3));
      for (const Term *L : BaseScopes.back())
        Inc.assertBase(L);
      break;
    }
    case 1:
      if (!BaseScopes.empty()) {
        Inc.popBase();
        BaseScopes.pop_back();
      }
      break;
    default:
      break;
    }

    std::vector<const Term *> Query = Gen.conjunction(2 + Gen.raw() % 3);
    ResourceLimits Limits;
    if (Gen.raw() % 2)
      Limits.Pivots = 1 + Gen.raw() % 25;
    else
      Limits.BnbNodes = 1 + Gen.raw() % 4;
    ResourceController RC(Limits);
    RC.start();
    ConjResult R;
    {
      ResourceScope Scope(RC);
      R = Inc.solveWithBase(Query);
    }
    if (R.Interrupted)
      ++Interrupts;

    // Reusability + differential: the stormed solver, now uncancelled,
    // must agree with a fresh from-scratch solve of base ++ query.
    ConjResult Clean = Inc.solveWithBase(Query);
    ASSERT_FALSE(Clean.Interrupted);
    std::vector<const Term *> All = Box;
    for (const auto &Scope : BaseScopes)
      All.insert(All.end(), Scope.begin(), Scope.end());
    All.insert(All.end(), Query.begin(), Query.end());
    TheoryConjSolver Fresh(TM);
    ASSERT_EQ(Clean.IsSat, Fresh.solve(All).IsSat)
        << "post-interrupt verdict diverged in round " << Round;
    if (!R.Interrupted) {
      ASSERT_EQ(R.IsSat, Clean.IsSat)
          << "budgeted verdict diverged in round " << Round;
    }
  }
  // The budgets are tight enough that some queries must have tripped.
  EXPECT_GT(Interrupts, 0);
}

TEST(SmtBnbTest, BranchLemmasAreTheoryValid) {
  TermManager TM;
  TheoryConjSolver S(TM);
  const Term *X = TM.mkVar("x", Sort::Int);
  const Term *Y = TM.mkVar("y", Sort::Int);
  // Base: y = 2x, so y is even.
  S.assertBase(TM.mkEq(Y, TM.mkMul(TM.mkIntConst(2), X)));
  // Query: y pinned to the odd value 1 — the rational relaxation has
  // x = 1/2, both integrality branches are refuted, and the query is
  // unsat without a scratch fallback.
  std::vector<const Term *> Query = {TM.mkLe(TM.mkIntConst(1), Y),
                                     TM.mkLe(Y, TM.mkIntConst(1))};
  ConjResult R = S.solveWithBase(Query);
  EXPECT_FALSE(R.IsSat);
  EXPECT_EQ(S.numScratchFallbacks(), 0u);
  EXPECT_GT(S.numBnbNodes(), 0u);

  // Every surfaced lemma says premises -> bound and must be theory-valid
  // on its own: premises AND NOT(bound) is unsat. Bounds are always
  // `a <= b` literals, so the negation is the strict flip `b < a`.
  std::vector<BranchLemma> Lemmas = S.takeBranchLemmas();
  ASSERT_FALSE(Lemmas.empty());
  for (const BranchLemma &L : Lemmas) {
    ASSERT_EQ(L.Bound->kind(), TermKind::Le);
    std::vector<const Term *> Check = L.Premises;
    Check.push_back(TM.mkLt(L.Bound->operand(1), L.Bound->operand(0)));
    TheoryConjSolver Validity(TM);
    ASSERT_FALSE(Validity.solve(Check).IsSat)
        << "branch lemma is not theory-valid";
  }
  // takeBranchLemmas drains.
  EXPECT_TRUE(S.takeBranchLemmas().empty());
}

TEST(SmtBnbTest, ContextAssumptionStormStaysIncremental) {
  // The CEGAR query pattern end-to-end: one SolverContext holds an
  // SSA-style even-step chain; every query is a batch of assumption
  // literals needing integrality and disequality splits. Verdicts are
  // cross-checked against a fresh one-shot facade per query, and the
  // context must serve every split on the cached tableau.
  TermManager TM;
  smt::SolverContext Ctx(TM);

  const int ChainLen = 24;
  std::vector<const Term *> Xs;
  for (int I = 0; I <= ChainLen; ++I)
    Xs.push_back(TM.mkVar("x" + std::to_string(I), Sort::Int));
  std::vector<const Term *> Prefix;
  Prefix.push_back(TM.mkEq(Xs[0], TM.mkIntConst(0)));
  for (int I = 1; I <= ChainLen; ++I)
    Prefix.push_back(
        TM.mkEq(Xs[I], TM.mkAdd(Xs[I - 1], TM.mkIntConst(2))));
  Ctx.assertTerm(TM.mkAnd(Prefix));

  const Term *Last = Xs[ChainLen]; // == 2 * ChainLen under the prefix.
  for (int Q = 0; Q < 20; ++Q) {
    // 2*Last bracketed around an odd value: rationally feasible at
    // half-integers, integrally pinned; adding the matching disequality
    // flips the verdict to unsat through a disequality split.
    int64_t Target = 2 * ChainLen + ((Q % 7) - 3) * 2;
    const Term *Two = TM.mkIntConst(2);
    const Term *Lo =
        TM.mkLe(TM.mkIntConst(2 * Target - 1), TM.mkMul(Two, Last));
    const Term *Hi =
        TM.mkLe(TM.mkMul(Two, Last), TM.mkIntConst(2 * Target + 1));
    const Term *Ne = TM.mkNot(TM.mkEq(Last, TM.mkIntConst(Target)));
    bool WithNe = Q % 2 == 0;

    std::vector<const Term *> Assumps = {Lo, Hi};
    if (WithNe)
      Assumps.push_back(Ne);
    Ctx.push(); // Exercise scope composition under the storm.
    smt::CheckResult R = Ctx.checkSat(Assumps);
    Ctx.pop();

    // Oracle: a fresh one-shot conjunction solve.
    std::vector<const Term *> All = Prefix;
    All.insert(All.end(), Assumps.begin(), Assumps.end());
    TheoryConjSolver Fresh(TM);
    bool OracleSat = Fresh.solve(All).IsSat;
    // The bracket admits exactly Last == Target, which the chain can only
    // realize when Target == 2 * ChainLen; the disequality then refutes
    // it.
    bool Expected = Target == 2 * ChainLen && !WithNe;
    EXPECT_EQ(OracleSat, Expected) << "oracle disagrees with arithmetic";
    ASSERT_EQ(R.isSat(), OracleSat) << "context diverged on query " << Q;
  }

  smt::ContextStats S = Ctx.stats();
  EXPECT_EQ(S.ScratchFallbacks, 0u);
  EXPECT_GT(S.BnbNodes, 0u);
  EXPECT_GT(S.BaseReuses, 0u);
}

} // namespace
