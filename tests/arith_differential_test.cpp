//===- tests/arith_differential_test.cpp - Randomized differential tests --===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Randomized differential test suite for the inline-limb BigInt/Rational
/// fast paths.
///
/// A hand-rolled two-representation number type is a classic source of
/// silent soundness bugs: a wrong overflow check or a missed demotion
/// produces values that are *plausible* but not *equal*, and the CEGAR
/// loop would happily trust them. This suite drives >= 100k randomized
/// operations — with operand magnitudes deliberately straddling the
/// inline/heap boundary (powers of two +/- 1, INT64_MIN/MAX neighborhoods,
/// multi-limb decimal literals) — and checks every result against a naive
/// schoolbook reference implementation kept local to this file (sign +
/// base-10^9 digit vector, no fast paths, no shared code with the
/// implementation under test).
///
/// Division and gcd are pinned by complete algebraic characterizations
/// (q*b + r == a with |r| < |b| and sign(r) == sign(a); g | a, g | b,
/// gcd(a/g, b/g) == 1) so the reference needs no long division of its own.
///
//===----------------------------------------------------------------------===//

#include "support/BigInt.h"
#include "support/Rational.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

using namespace pathinv;

namespace {

//===----------------------------------------------------------------------===//
// Seeded PRNG (xorshift64*): deterministic across platforms and runs.
//===----------------------------------------------------------------------===//

class XorShift {
public:
  explicit XorShift(uint64_t Seed) : State(Seed ? Seed : 0x9e3779b97f4a7c15ull) {}

  uint64_t next() {
    State ^= State >> 12;
    State ^= State << 25;
    State ^= State >> 27;
    return State * 2685821657736338717ull;
  }
  /// Uniform in [0, Bound).
  uint64_t below(uint64_t Bound) { return next() % Bound; }

private:
  uint64_t State;
};

//===----------------------------------------------------------------------===//
// Schoolbook reference integers: sign + little-endian base-10^9 digits.
//===----------------------------------------------------------------------===//

constexpr uint32_t RefBase = 1000000000u;

struct RefInt {
  int Sign = 0;                 ///< -1, 0, +1.
  std::vector<uint32_t> Digits; ///< Little-endian base-10^9, no leading 0s.
};

void refTrim(std::vector<uint32_t> &D) {
  while (!D.empty() && D.back() == 0)
    D.pop_back();
}

RefInt refFromDecimal(std::string_view Text) {
  RefInt R;
  bool Negative = false;
  if (!Text.empty() && (Text[0] == '-' || Text[0] == '+')) {
    Negative = Text[0] == '-';
    Text.remove_prefix(1);
  }
  // Consume 9-digit chunks from the least-significant end.
  for (size_t End = Text.size(); End > 0;) {
    size_t Begin = End >= 9 ? End - 9 : 0;
    uint32_t Chunk = 0;
    for (size_t I = Begin; I < End; ++I)
      Chunk = Chunk * 10 + static_cast<uint32_t>(Text[I] - '0');
    R.Digits.push_back(Chunk);
    End = Begin;
  }
  refTrim(R.Digits);
  R.Sign = R.Digits.empty() ? 0 : (Negative ? -1 : 1);
  return R;
}

std::string refToString(const RefInt &R) {
  if (R.Sign == 0)
    return "0";
  std::string Out = R.Sign < 0 ? "-" : "";
  Out += std::to_string(R.Digits.back());
  for (size_t I = R.Digits.size() - 1; I-- > 0;) {
    std::string Chunk = std::to_string(R.Digits[I]);
    Out += std::string(9 - Chunk.size(), '0') + Chunk;
  }
  return Out;
}

int refCmpMag(const std::vector<uint32_t> &A, const std::vector<uint32_t> &B) {
  if (A.size() != B.size())
    return A.size() < B.size() ? -1 : 1;
  for (size_t I = A.size(); I-- > 0;)
    if (A[I] != B[I])
      return A[I] < B[I] ? -1 : 1;
  return 0;
}

std::vector<uint32_t> refAddMag(const std::vector<uint32_t> &A,
                                const std::vector<uint32_t> &B) {
  std::vector<uint32_t> Out;
  uint32_t Carry = 0;
  for (size_t I = 0; I < std::max(A.size(), B.size()) || Carry; ++I) {
    uint64_t Sum = Carry;
    if (I < A.size())
      Sum += A[I];
    if (I < B.size())
      Sum += B[I];
    Out.push_back(static_cast<uint32_t>(Sum % RefBase));
    Carry = static_cast<uint32_t>(Sum / RefBase);
  }
  refTrim(Out);
  return Out;
}

/// Requires |A| >= |B|.
std::vector<uint32_t> refSubMag(const std::vector<uint32_t> &A,
                                const std::vector<uint32_t> &B) {
  std::vector<uint32_t> Out;
  int64_t Borrow = 0;
  for (size_t I = 0; I < A.size(); ++I) {
    int64_t Diff = static_cast<int64_t>(A[I]) - Borrow -
                   (I < B.size() ? static_cast<int64_t>(B[I]) : 0);
    if (Diff < 0) {
      Diff += RefBase;
      Borrow = 1;
    } else {
      Borrow = 0;
    }
    Out.push_back(static_cast<uint32_t>(Diff));
  }
  refTrim(Out);
  return Out;
}

RefInt refAdd(const RefInt &A, const RefInt &B) {
  if (A.Sign == 0)
    return B;
  if (B.Sign == 0)
    return A;
  RefInt R;
  if (A.Sign == B.Sign) {
    R.Sign = A.Sign;
    R.Digits = refAddMag(A.Digits, B.Digits);
    return R;
  }
  int Cmp = refCmpMag(A.Digits, B.Digits);
  if (Cmp == 0)
    return R;
  const RefInt &Big = Cmp > 0 ? A : B;
  const RefInt &Small = Cmp > 0 ? B : A;
  R.Sign = Big.Sign;
  R.Digits = refSubMag(Big.Digits, Small.Digits);
  return R;
}

RefInt refNeg(RefInt A) {
  A.Sign = -A.Sign;
  return A;
}

RefInt refSub(const RefInt &A, const RefInt &B) { return refAdd(A, refNeg(B)); }

RefInt refMul(const RefInt &A, const RefInt &B) {
  RefInt R;
  if (A.Sign == 0 || B.Sign == 0)
    return R;
  std::vector<uint64_t> Acc(A.Digits.size() + B.Digits.size(), 0);
  for (size_t I = 0; I < A.Digits.size(); ++I)
    for (size_t J = 0; J < B.Digits.size(); ++J) {
      Acc[I + J] += static_cast<uint64_t>(A.Digits[I]) * B.Digits[J];
      // Defuse carries early: base^2 < 2^60, so a few additions fit, but
      // normalize whenever the slot could approach overflow.
      if (Acc[I + J] >= (uint64_t(1) << 62)) {
        Acc[I + J + 1] += Acc[I + J] / RefBase;
        Acc[I + J] %= RefBase;
      }
    }
  uint64_t Carry = 0;
  R.Digits.reserve(Acc.size());
  for (uint64_t Slot : Acc) {
    uint64_t Cur = Slot + Carry;
    R.Digits.push_back(static_cast<uint32_t>(Cur % RefBase));
    Carry = Cur / RefBase;
  }
  while (Carry) {
    R.Digits.push_back(static_cast<uint32_t>(Carry % RefBase));
    Carry /= RefBase;
  }
  refTrim(R.Digits);
  R.Sign = A.Sign * B.Sign;
  return R;
}

int refCompare(const RefInt &A, const RefInt &B) {
  if (A.Sign != B.Sign)
    return A.Sign < B.Sign ? -1 : 1;
  int MagCmp = refCmpMag(A.Digits, B.Digits);
  return A.Sign >= 0 ? MagCmp : -MagCmp;
}

bool refEqual(const RefInt &A, const RefInt &B) { return refCompare(A, B) == 0; }

//===----------------------------------------------------------------------===//
// Boundary-straddling operand generator (emits decimal strings so both
// implementations parse the same text).
//===----------------------------------------------------------------------===//

std::string dec128(__int128 V) {
  if (V == 0)
    return "0";
  bool Neg = V < 0;
  unsigned __int128 U = Neg ? -static_cast<unsigned __int128>(V)
                            : static_cast<unsigned __int128>(V);
  std::string S;
  while (U) {
    S.push_back(static_cast<char>('0' + static_cast<int>(U % 10)));
    U /= 10;
  }
  if (Neg)
    S.push_back('-');
  std::reverse(S.begin(), S.end());
  return S;
}

/// Random operand whose magnitude class straddles the inline/heap boundary.
std::string genOperand(XorShift &Rng) {
  switch (Rng.below(8)) {
  case 0: // Tiny values: the bulk of real simplex traffic.
    return dec128(static_cast<int64_t>(Rng.below(33)) - 16);
  case 1: { // Random int64 with varying magnitude.
    int64_t V = static_cast<int64_t>(Rng.next()) >>
                static_cast<int>(Rng.below(63));
    return dec128(V);
  }
  case 2: { // Powers of two +/- {-1,0,1} up to 2^126: crosses both the
            // int32 limb boundary and the int64 inline boundary.
    int Shift = 1 + static_cast<int>(Rng.below(126));
    __int128 P = static_cast<__int128>(1) << Shift;
    P += static_cast<__int128>(Rng.below(3)) - 1;
    return dec128(Rng.below(2) ? P : -P);
  }
  case 3: { // INT64_MIN/MAX neighborhoods: the promotion edge itself.
    __int128 Base = Rng.below(2) ? static_cast<__int128>(INT64_MAX)
                                 : static_cast<__int128>(INT64_MIN);
    return dec128(Base + static_cast<__int128>(Rng.below(5)) - 2);
  }
  case 4: { // Products of two random int64s: dense two-to-four limb values.
    __int128 P = static_cast<__int128>(static_cast<int64_t>(Rng.next())) *
                 static_cast<int64_t>(Rng.next());
    return dec128(P);
  }
  default: { // Wide decimal literals (up to ~40 digits, far past 128 bits).
    size_t Len = 1 + Rng.below(40);
    std::string S = Rng.below(2) ? "-" : "";
    S += static_cast<char>('1' + Rng.below(9));
    for (size_t I = 1; I < Len; ++I)
      S += static_cast<char>('0' + Rng.below(10));
    return S;
  }
  }
}

//===----------------------------------------------------------------------===//
// BigInt differential sweep
//===----------------------------------------------------------------------===//

TEST(ArithDifferentialTest, BigIntAgainstSchoolbookReference) {
  XorShift Rng(0x5eed5eed5eed5eedull);
  uint64_t Ops = 0;

  for (int Iter = 0; Iter < 10000; ++Iter) {
    std::string SA = genOperand(Rng);
    std::string SB = genOperand(Rng);
    BigInt A{std::string_view(SA)}, B{std::string_view(SB)};
    RefInt RA = refFromDecimal(SA), RB = refFromDecimal(SB);

    // Parsing/printing roundtrip (both directions).
    ASSERT_EQ(A.toString(), refToString(RA)) << SA;
    ASSERT_EQ(B.toString(), refToString(RB)) << SB;

    // Ring operations against the reference.
    BigInt Sum = A + B;
    BigInt Diff = A - B;
    BigInt Prod = A * B;
    Ops += 3;
    ASSERT_EQ(Sum.toString(), refToString(refAdd(RA, RB))) << SA << " + " << SB;
    ASSERT_EQ(Diff.toString(), refToString(refSub(RA, RB))) << SA << " - " << SB;
    ASSERT_EQ(Prod.toString(), refToString(refMul(RA, RB))) << SA << " * " << SB;

    // Comparison and hashing.
    int Cmp = A.compare(B);
    ++Ops;
    ASSERT_EQ(Cmp, refCompare(RA, RB)) << SA << " <=> " << SB;
    ASSERT_EQ(A == B, Cmp == 0);

    // a + b - b == a, and the rebuilt value hashes identically.
    BigInt Rebuilt = Sum - B;
    ++Ops;
    ASSERT_EQ(Rebuilt, A) << SA << " via +" << SB << " -" << SB;
    ASSERT_EQ(Rebuilt.hash(), A.hash());
    ASSERT_EQ(Rebuilt.fitsInt64(), A.fitsInt64())
        << "representation not canonical for " << SA;

    // Accumulate ops agree with the expression forms.
    BigInt Acc = A;
    Acc.addMul(B, Diff);
    ++Ops;
    ASSERT_EQ(Acc, A + B * Diff);
    Acc = A;
    Acc.subMul(B, Diff);
    ++Ops;
    ASSERT_EQ(Acc, A - B * Diff);

    // Truncated division, fully characterized: a = q*b + r, |r| < |b|,
    // sign(r) == sign(a) (or r == 0).
    if (!B.isZero()) {
      BigInt Q, R;
      BigInt::divMod(A, B, Q, R);
      ++Ops;
      RefInt RQ = refFromDecimal(Q.toString());
      RefInt RR = refFromDecimal(R.toString());
      ASSERT_TRUE(refEqual(refAdd(refMul(RQ, RB), RR), RA))
          << SA << " divmod " << SB;
      ASSERT_TRUE(R.abs() < B.abs());
      if (!R.isZero()) {
        ASSERT_EQ(R.sign(), A.sign());
      }
      // floorDiv: q_floor <= a/b < q_floor + 1, i.e.
      // q_floor*b <= a (b>0) / >= a (b<0), and off by less than one b.
      BigInt FQ = A.floorDiv(B);
      ++Ops;
      BigInt Lo = FQ * B;
      BigInt Hi = (FQ + BigInt(1)) * B;
      if (B.sign() > 0) {
        ASSERT_TRUE(Lo <= A && A < Hi) << SA << " floorDiv " << SB;
      } else {
        ASSERT_TRUE(Hi < A && A <= Lo) << SA << " floorDiv " << SB;
      }
    }

    // gcd, fully characterized: g >= 0, g | a, g | b, gcd(a/g, b/g) == 1.
    BigInt G = BigInt::gcd(A, B);
    ++Ops;
    if (A.isZero() && B.isZero()) {
      ASSERT_TRUE(G.isZero());
    } else {
      ASSERT_GT(G.sign(), 0);
      ASSERT_TRUE((A % G).isZero());
      ASSERT_TRUE((B % G).isZero());
      ASSERT_TRUE(BigInt::gcd(A / G, B / G).isOne());
      Ops += 5;
    }

    // String roundtrip through the implementation under test.
    BigInt Reparsed;
    ASSERT_TRUE(BigInt::fromString(Prod.toString(), Reparsed));
    ASSERT_EQ(Reparsed, Prod);
  }
  // The tentpole contract: this sweep alone covers ~100k randomized ops.
  EXPECT_GE(Ops, 100000u);
}

//===----------------------------------------------------------------------===//
// Heap gcd: binary (Stein) vs. Euclid reference
//===----------------------------------------------------------------------===//

// The heap-encoded gcd path is binary (Stein): compare, subtract, and
// shift — no long division. This sweep pins it against a test-local
// transcription of the pre-Stein implementation (Euclid over BigInt's own
// divMod), on operands deliberately sharing power-of-two and odd factors
// so the gcd itself is frequently a multi-limb value (the common-shift
// and subtract-shift paths both fire every round). The inline fast path
// is untouched by the rewrite and is covered by the characterization
// sweep above.
TEST(ArithDifferentialTest, HeapGcdMatchesEuclidReference) {
  auto euclidGcd = [](const BigInt &A, const BigInt &B) {
    BigInt X = A.abs();
    BigInt Y = B.abs();
    while (!Y.isZero()) {
      BigInt R = X % Y;
      X = std::move(Y);
      Y = std::move(R);
    }
    return X;
  };
  XorShift Rng(0xb17a6cdb17a6cdull);
  for (int Iter = 0; Iter < 4000; ++Iter) {
    std::string SA = genOperand(Rng);
    std::string SB = genOperand(Rng);
    BigInt A{std::string_view(SA)};
    BigInt B{std::string_view(SB)};
    // Plant a shared 2^k (and sometimes odd) factor to grow the gcd.
    int K = static_cast<int>(Rng.below(80));
    BigInt Shared(1);
    for (int I = 0; I < K; ++I)
      Shared *= BigInt(2);
    if (Rng.below(2))
      Shared *= BigInt(static_cast<int64_t>(2 * Rng.below(1000) + 1));
    A *= Shared;
    B *= Shared;

    BigInt G = BigInt::gcd(A, B);
    ASSERT_EQ(G, euclidGcd(A, B)) << SA << " gcd " << SB << " << " << K;
    // Commutativity, sign-insensitivity, and the zero identities.
    ASSERT_EQ(G, BigInt::gcd(B, A));
    ASSERT_EQ(G, BigInt::gcd(-A, B));
    ASSERT_EQ(G, BigInt::gcd(A, -B));
    ASSERT_EQ(BigInt::gcd(A, BigInt(0)), A.abs());
    ASSERT_EQ(BigInt::gcd(BigInt(0), B), B.abs());
    // The planted factor divides the gcd (unless both operands are zero).
    if (!A.isZero() || !B.isZero()) {
      ASSERT_TRUE((G % Shared).isZero()) << SA << " gcd " << SB;
    }
  }
}

//===----------------------------------------------------------------------===//
// Rational differential sweep
//===----------------------------------------------------------------------===//

/// Reference fraction: un-normalized pair of RefInts with Den != 0.
struct RefFrac {
  RefInt Num;
  RefInt Den;
};

/// Fraction equality by cross-multiplication (sign-correct for any nonzero
/// denominators).
bool refFracEquals(const RefFrac &F, const Rational &R) {
  RefInt RN = refFromDecimal(R.numerator().toString());
  RefInt RD = refFromDecimal(R.denominator().toString());
  return refEqual(refMul(F.Num, RD), refMul(RN, F.Den));
}

TEST(ArithDifferentialTest, RationalAgainstSchoolbookReference) {
  XorShift Rng(0xfeedface0badf00dull);
  uint64_t Ops = 0;

  for (int Iter = 0; Iter < 4000; ++Iter) {
    std::string N1 = genOperand(Rng), D1 = genOperand(Rng);
    std::string N2 = genOperand(Rng), D2 = genOperand(Rng);
    BigInt BD1{std::string_view(D1)}, BD2{std::string_view(D2)};
    if (BD1.isZero() || BD2.isZero())
      continue;
    Rational A(BigInt{std::string_view(N1)}, BD1);
    Rational B(BigInt{std::string_view(N2)}, BD2);
    RefFrac FA{refFromDecimal(N1), refFromDecimal(D1)};
    RefFrac FB{refFromDecimal(N2), refFromDecimal(D2)};

    // Canonical-form invariants hold after every construction.
    auto checkCanonical = [&](const Rational &R) {
      ASSERT_GT(R.denominator().sign(), 0);
      ASSERT_TRUE(R.isZero() ? R.denominator().isOne()
                             : BigInt::gcd(R.numerator(), R.denominator())
                                   .isOne());
    };
    checkCanonical(A);
    checkCanonical(B);
    ASSERT_TRUE(refFracEquals(FA, A)) << N1 << "/" << D1;
    ASSERT_TRUE(refFracEquals(FB, B)) << N2 << "/" << D2;

    // Field operations against reference cross-multiplication.
    Rational Sum = A + B;
    Rational Diff = A - B;
    Rational Prod = A * B;
    Ops += 3;
    checkCanonical(Sum);
    checkCanonical(Diff);
    checkCanonical(Prod);
    RefFrac FSum{refAdd(refMul(FA.Num, FB.Den), refMul(FB.Num, FA.Den)),
                 refMul(FA.Den, FB.Den)};
    RefFrac FDiff{refSub(refMul(FA.Num, FB.Den), refMul(FB.Num, FA.Den)),
                  refMul(FA.Den, FB.Den)};
    RefFrac FProd{refMul(FA.Num, FB.Num), refMul(FA.Den, FB.Den)};
    ASSERT_TRUE(refFracEquals(FSum, Sum)) << Sum.toString();
    ASSERT_TRUE(refFracEquals(FDiff, Diff)) << Diff.toString();
    ASSERT_TRUE(refFracEquals(FProd, Prod)) << Prod.toString();

    if (!B.isZero()) {
      Rational Quot = A / B;
      ++Ops;
      checkCanonical(Quot);
      RefFrac FQuot{refMul(FA.Num, FB.Den), refMul(FA.Den, FB.Num)};
      ASSERT_TRUE(refFracEquals(FQuot, Quot)) << Quot.toString();
      Rational Round = Quot * B;
      ++Ops;
      ASSERT_EQ(Round, A) << "(a/b)*b != a";
      ASSERT_EQ(B * B.inverse(), Rational(1));
      Ops += 2;
    }

    // Ordering: sign of a*d2' - b*d1' with denominators forced positive.
    auto positiveDen = [](RefFrac F) {
      if (F.Den.Sign < 0) {
        F.Den.Sign = 1;
        F.Num.Sign = -F.Num.Sign;
      }
      return F;
    };
    RefFrac PA = positiveDen(FA), PB = positiveDen(FB);
    int RefCmp =
        refCompare(refMul(PA.Num, PB.Den), refMul(PB.Num, PA.Den));
    ASSERT_EQ(A.compare(B), RefCmp);
    ++Ops;

    // Accumulate ops agree with the expression forms and the reference.
    Rational Acc = Sum;
    Acc.addMul(A, B);
    ++Ops;
    checkCanonical(Acc);
    ASSERT_EQ(Acc, Sum + Prod);
    RefFrac FAcc{refAdd(refMul(FSum.Num, FProd.Den),
                        refMul(FProd.Num, FSum.Den)),
                 refMul(FSum.Den, FProd.Den)};
    ASSERT_TRUE(refFracEquals(FAcc, Acc));
    Acc.subMul(A, B);
    ++Ops;
    ASSERT_EQ(Acc, Sum) << "x.addMul(a,b); x.subMul(a,b) must round-trip";

    // a + b - b == a, hash/compare consistency across construction routes.
    Rational Rebuilt = Sum - B;
    ++Ops;
    ASSERT_EQ(Rebuilt, A);
    ASSERT_EQ(Rebuilt.hash(), A.hash());
    ASSERT_EQ(Rebuilt.compare(A), 0);

    // floor/ceil bracket the value.
    Rational FloorR{BigInt(A.floor())};
    Rational CeilR{BigInt(A.ceil())};
    Ops += 2;
    ASSERT_LE(FloorR, A);
    ASSERT_LT(A, FloorR + Rational(1));
    ASSERT_GE(CeilR, A);
    ASSERT_GT(A + Rational(1), CeilR);
  }
  EXPECT_GE(Ops, 40000u);
}

//===----------------------------------------------------------------------===//
// Targeted regression seeds: cases that once straddled the boundary badly.
//===----------------------------------------------------------------------===//

TEST(ArithDifferentialTest, BoundaryPinpoints) {
  // 2^63 +/- 1 arithmetic crossing the inline boundary in both directions.
  BigInt Max(INT64_MAX), Min(INT64_MIN), One(1);
  EXPECT_EQ((Max + One).toString(), "9223372036854775808");
  EXPECT_EQ((Max + One - One), Max);
  EXPECT_EQ((Min - One).toString(), "-9223372036854775809");
  EXPECT_EQ((Min - One + One), Min);
  EXPECT_EQ((Min * BigInt(-1)).toString(), "9223372036854775808");
  EXPECT_EQ(((Min * BigInt(-1)) + Min).toString(), "0");

  // INT64_MIN / -1 is the one int64/int64 quotient that overflows.
  BigInt Q, R;
  BigInt::divMod(Min, BigInt(-1), Q, R);
  EXPECT_EQ(Q.toString(), "9223372036854775808");
  EXPECT_TRUE(R.isZero());

  // gcd(INT64_MIN, 0) == 2^63 exceeds int64.
  EXPECT_EQ(BigInt::gcd(Min, BigInt(0)).toString(), "9223372036854775808");

  // Rational normalization across the boundary: (2^64)/(2^65) demotes to
  // the fully inline 1/2.
  Rational Half(BigInt("18446744073709551616"), BigInt("36893488147419103232"));
  EXPECT_EQ(Half.toString(), "1/2");
  EXPECT_TRUE(Half.numerator().fitsInt64());
  EXPECT_TRUE(Half.denominator().fitsInt64());

  // addMul promoting the accumulator: 1 + INT64_MAX * INT64_MAX.
  Rational AccP(1);
  AccP.addMul(Rational(INT64_MAX), Rational(INT64_MAX));
  EXPECT_EQ(AccP.toString(), "85070591730234615847396907784232501250");
}

} // namespace
