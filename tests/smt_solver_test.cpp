//===- tests/smt_solver_test.cpp - SMT end-to-end tests -------------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "logic/FormulaParser.h"
#include "logic/TermPrinter.h"
#include "smt/ArrayElim.h"
#include "smt/SmtSolver.h"

#include <gtest/gtest.h>

using namespace pathinv;

namespace {

class SmtTest : public ::testing::Test {
protected:
  const Term *parse(const char *Text) {
    auto F = parseFormula(TM, Text, Env);
    EXPECT_TRUE(F.hasValue()) << F.error().render();
    return F.get();
  }

  bool isSat(const char *Text) {
    return Solver.checkSat(parse(Text)) == SmtSolver::Status::Sat;
  }

  TermManager TM;
  SortEnv Env;
  SmtSolver Solver{TM};
};

// --- Pure linear arithmetic ------------------------------------------------

TEST_F(SmtTest, LinearBasics) {
  EXPECT_TRUE(isSat("x + y <= 3 && x >= 1"));
  EXPECT_FALSE(isSat("x <= 2 && x >= 3"));
  EXPECT_FALSE(isSat("x < 1 && x > 0")) << "no integer strictly between";
  EXPECT_FALSE(isSat("x < 1 && x >= 1"));
  EXPECT_TRUE(isSat("x < 2 && x > 0"));
  EXPECT_FALSE(isSat("x = 1 && x = 2"));
  EXPECT_TRUE(isSat("2*x + 3*y = 7 && x - y = 1"));
}

TEST_F(SmtTest, IntegralityByBranchAndBound) {
  // 0 < n < 1 has no integer solution (but has rational ones).
  EXPECT_FALSE(isSat("n > 0 && n < 1"));
  EXPECT_FALSE(isSat("2*x = 1"));
  EXPECT_TRUE(isSat("2*x = 4"));
  EXPECT_FALSE(isSat("3*x = 2*y && x > y && y > 0 && x < y + 1"));
}

TEST_F(SmtTest, PaperPathFormulaIntegerUnsat) {
  // Full FORWARD path formula from Section 2.1, including the disequality
  // a2 + b2 != 3*n0: unsat over the integers.
  EXPECT_FALSE(isSat("n0 >= 0 && i1 = 0 && a1 = 0 && b1 = 0 && i1 < n0 && "
                     "a2 = a1 + 1 && b2 = b1 + 2 && i2 = i1 + 1 && "
                     "i2 >= n0 && a2 + b2 != 3*n0"));
  // With the assertion's relation satisfied instead, it is feasible.
  EXPECT_TRUE(isSat("n0 >= 0 && i1 = 0 && a1 = 0 && b1 = 0 && i1 < n0 && "
                    "a2 = a1 + 1 && b2 = b1 + 2 && i2 = i1 + 1 && "
                    "i2 >= n0 && a2 + b2 = 3*n0"));
}

TEST_F(SmtTest, DisequalitySplitting) {
  EXPECT_TRUE(isSat("x != y"));
  EXPECT_FALSE(isSat("x != y && x <= y && y <= x"));
  EXPECT_FALSE(isSat("x != 3 && x >= 3 && x <= 3"));
  EXPECT_TRUE(isSat("x != 3 && x >= 3"));
  EXPECT_FALSE(isSat("x != y && y != z && x = z && x = y"));
}

TEST_F(SmtTest, BooleanStructure) {
  EXPECT_TRUE(isSat("x = 1 || x = 2"));
  EXPECT_FALSE(isSat("(x = 1 || x = 2) && x >= 5"));
  EXPECT_TRUE(isSat("(x = 1 || x = 2) && x >= 2"));
  EXPECT_FALSE(isSat("(x <= 1 || x <= 2) && x > 2"));
  EXPECT_FALSE(isSat("!(x <= y || y < x)"));
  EXPECT_TRUE(isSat("(x = 1 -> y = 2) && x = 1 && y = 2"));
  EXPECT_FALSE(isSat("(x = 1 -> y = 2) && x = 1 && y = 3"));
}

TEST_F(SmtTest, ModelIsAvailable) {
  const Term *F = parse("x + y = 10 && x - y = 4");
  ASSERT_EQ(Solver.checkSat(F), SmtSolver::Status::Sat);
  const auto &Model = Solver.model();
  Rational X = Model.at(TM.mkVar("x", Sort::Int));
  Rational Y = Model.at(TM.mkVar("y", Sort::Int));
  EXPECT_EQ(X + Y, Rational(10));
  EXPECT_EQ(X - Y, Rational(4));
}

// --- Uninterpreted functions ------------------------------------------------

TEST_F(SmtTest, CongruenceBasics) {
  EXPECT_FALSE(isSat("x = y && f(x) != f(y)"));
  EXPECT_TRUE(isSat("x != y && f(x) != f(y)"));
  EXPECT_TRUE(isSat("f(x) != f(y)")); // Forces x != y; fine.
  EXPECT_FALSE(isSat("x = y && y = z && f(x) != f(z)"));
  EXPECT_FALSE(isSat("f(x, y) != f(x, y)"));
}

TEST_F(SmtTest, CongruenceThroughArithmetic) {
  // x <= y && y <= x implies x = y arithmetically, which forces
  // f(x) = f(y) by congruence — requires the theory combination.
  EXPECT_FALSE(isSat("x <= y && y <= x && f(x) != f(y)"));
  EXPECT_FALSE(isSat("x <= y && y <= x && f(x) - f(y) >= 1"));
  EXPECT_TRUE(isSat("x <= y && f(x) != f(y)"));
}

TEST_F(SmtTest, FunctionValuesFeedArithmetic) {
  EXPECT_FALSE(isSat("f(x) >= 5 && f(y) <= 3 && x = y"));
  EXPECT_TRUE(isSat("f(x) >= 5 && f(y) <= 3 && x != y"));
  EXPECT_FALSE(isSat("f(x) = x && f(f(x)) != x && x = f(x)"));
}

// --- Arrays ------------------------------------------------------------------

TEST_F(SmtTest, ArrayReadsAsUF) {
  EXPECT_FALSE(isSat("i = j && a[i] != a[j]"));
  EXPECT_TRUE(isSat("i != j && a[i] != a[j]"));
  EXPECT_FALSE(isSat("i <= j && j <= i && a[i] = 1 && a[j] = 2"));
}

TEST_F(SmtTest, InitcheckFirstCellFact) {
  // From the INITCHECK counterexample (Section 2.2): after a[0] := 0 the
  // check a[0] != 0 is infeasible.
  SortEnv E;
  auto A0 = parseFormula(TM, "a1[0] = 0 && a1[i] != 0 && i = 0", E);
  ASSERT_TRUE(A0.hasValue());
  EXPECT_EQ(Solver.checkSat(A0.get()), SmtSolver::Status::Unsat);
}

TEST_F(SmtTest, StoreEliminationReadSameIndex) {
  // b = store(a, i, 5) && b[i] != 5 is unsat.
  const Term *A = TM.mkVar("a", Sort::ArrayIntInt);
  const Term *B = TM.mkVar("b", Sort::ArrayIntInt);
  const Term *I = TM.mkVar("i", Sort::Int);
  const Term *Def =
      TM.mkEq(B, TM.mkStore(A, I, TM.mkIntConst(5)));
  const Term *Bad = TM.mkNe(TM.mkSelect(B, I), TM.mkIntConst(5));
  EXPECT_EQ(Solver.checkSat(TM.mkAnd(Def, Bad)), SmtSolver::Status::Unsat);
}

TEST_F(SmtTest, StoreEliminationReadOtherIndex) {
  // b = store(a, i, 5) && j != i && b[j] != a[j] is unsat.
  const Term *A = TM.mkVar("a", Sort::ArrayIntInt);
  const Term *B = TM.mkVar("b", Sort::ArrayIntInt);
  const Term *I = TM.mkVar("i", Sort::Int);
  const Term *J = TM.mkVar("j", Sort::Int);
  const Term *Def = TM.mkEq(B, TM.mkStore(A, I, TM.mkIntConst(5)));
  const Term *F = TM.mkAnd(
      {Def, TM.mkNe(J, I),
       TM.mkNe(TM.mkSelect(B, J), TM.mkSelect(A, J))});
  EXPECT_EQ(Solver.checkSat(F), SmtSolver::Status::Unsat);
  // Without j != i it is satisfiable (j may alias i).
  const Term *G = TM.mkAnd(
      {Def, TM.mkNe(TM.mkSelect(B, J), TM.mkSelect(A, J))});
  EXPECT_EQ(Solver.checkSat(G), SmtSolver::Status::Sat);
}

TEST_F(SmtTest, StoreChain) {
  // c = store(b, j, 2), b = store(a, i, 1), i != j
  //   ==> c[i] = 1 && c[j] = 2.
  const Term *A = TM.mkVar("a", Sort::ArrayIntInt);
  const Term *B = TM.mkVar("b", Sort::ArrayIntInt);
  const Term *C = TM.mkVar("c", Sort::ArrayIntInt);
  const Term *I = TM.mkVar("i", Sort::Int);
  const Term *J = TM.mkVar("j", Sort::Int);
  const Term *Defs = TM.mkAnd(
      TM.mkEq(B, TM.mkStore(A, I, TM.mkIntConst(1))),
      TM.mkEq(C, TM.mkStore(B, J, TM.mkIntConst(2))));
  const Term *Sep = TM.mkNe(I, J);
  EXPECT_EQ(Solver.checkSat(TM.mkAnd(
                {Defs, Sep,
                 TM.mkNe(TM.mkSelect(C, I), TM.mkIntConst(1))})),
            SmtSolver::Status::Unsat);
  EXPECT_EQ(Solver.checkSat(TM.mkAnd(
                {Defs, Sep,
                 TM.mkNe(TM.mkSelect(C, J), TM.mkIntConst(2))})),
            SmtSolver::Status::Unsat);
}

TEST_F(SmtTest, ArrayAliasSubstitution) {
  // b = a (array identity) && b[i] != a[i] is unsat.
  const Term *A = TM.mkVar("a", Sort::ArrayIntInt);
  const Term *B = TM.mkVar("b", Sort::ArrayIntInt);
  const Term *I = TM.mkVar("i", Sort::Int);
  const Term *F = TM.mkAnd(
      TM.mkEq(B, A), TM.mkNe(TM.mkSelect(B, I), TM.mkSelect(A, I)));
  EXPECT_EQ(Solver.checkSat(F), SmtSolver::Status::Unsat);
}

// --- Entailment (the predicate-abstraction workhorse) ------------------------

TEST_F(SmtTest, Entailment) {
  EXPECT_TRUE(Solver.entails(parse("x = 2"), parse("x >= 1")));
  EXPECT_FALSE(Solver.entails(parse("x >= 1"), parse("x = 2")));
  EXPECT_TRUE(Solver.entails(parse("a + b = 3*i && i = n"),
                             parse("a + b = 3*n")));
  EXPECT_TRUE(Solver.entails(parse("false"), parse("x = 1")));
  EXPECT_TRUE(Solver.entails(parse("x = 1"), parse("true")));
}

TEST_F(SmtTest, CacheCountsHits) {
  const Term *F = parse("x <= 2 && x >= 3");
  EXPECT_EQ(Solver.checkSat(F), SmtSolver::Status::Unsat);
  uint64_t Before = Solver.numCacheHits();
  EXPECT_EQ(Solver.checkSat(F), SmtSolver::Status::Unsat);
  EXPECT_EQ(Solver.numCacheHits(), Before + 1);
}

// --- Array write elimination pass in isolation -------------------------------

TEST(ArrayElimTest, NoStoresIsIdentity) {
  TermManager TM;
  SortEnv Env;
  auto F = parseFormula(TM, "a[i] = 0 && i <= n", Env);
  ASSERT_TRUE(F.hasValue());
  auto R = eliminateArrayWrites(TM, F.get());
  ASSERT_TRUE(R.hasValue());
  EXPECT_EQ(R.get(), F.get());
}

TEST(ArrayElimTest, ProducesStoreFreeFormula) {
  TermManager TM;
  const Term *A = TM.mkVar("a", Sort::ArrayIntInt);
  const Term *B = TM.mkVar("b", Sort::ArrayIntInt);
  const Term *I = TM.mkVar("i", Sort::Int);
  const Term *J = TM.mkVar("j", Sort::Int);
  const Term *F = TM.mkAnd(
      TM.mkEq(B, TM.mkStore(A, I, TM.mkIntConst(0))),
      TM.mkEq(TM.mkSelect(B, J), TM.mkIntConst(1)));
  auto R = eliminateArrayWrites(TM, F);
  ASSERT_TRUE(R.hasValue());
  EXPECT_FALSE(containsStore(R.get())) << printTerm(R.get());
}

TEST(ArrayElimTest, RejectsNestedStores) {
  TermManager TM;
  const Term *A = TM.mkVar("a", Sort::ArrayIntInt);
  const Term *B = TM.mkVar("b", Sort::ArrayIntInt);
  const Term *I = TM.mkVar("i", Sort::Int);
  const Term *Nested = TM.mkStore(TM.mkStore(A, I, TM.mkIntConst(0)), I,
                                  TM.mkIntConst(1));
  auto R = eliminateArrayWrites(TM, TM.mkEq(B, Nested));
  EXPECT_FALSE(R.hasValue());
}

} // namespace
