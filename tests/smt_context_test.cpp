//===- tests/smt_context_test.cpp - SolverContext push/pop tests ----------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantics of the incremental solver context: nested scopes, pop
/// restoring satisfiability, assumption-based unsat cores, model
/// stability across scopes, and the fingerprint-keyed memoization of the
/// one-shot façade.
///
//===----------------------------------------------------------------------===//

#include "core/Resource.h"
#include "logic/FormulaParser.h"
#include "smt/SmtSolver.h"
#include "smt/SolverContext.h"

#include <gtest/gtest.h>

#include <random>

using namespace pathinv;

namespace {

class SolverContextTest : public ::testing::Test {
protected:
  const Term *parse(const char *Text) {
    auto F = parseFormula(TM, Text, Env);
    EXPECT_TRUE(F.hasValue()) << F.error().render();
    return F.get();
  }

  TermManager TM;
  SortEnv Env;
  smt::SolverContext Ctx{TM};
};

TEST_F(SolverContextTest, EmptyContextIsSat) {
  EXPECT_TRUE(Ctx.checkSat().isSat());
  EXPECT_TRUE(Ctx.checkSat().model().empty());
}

TEST_F(SolverContextTest, PopRestoresSatStatus) {
  Ctx.assertTerm(parse("x <= 5"));
  EXPECT_TRUE(Ctx.checkSat().isSat());

  Ctx.push();
  Ctx.assertTerm(parse("x >= 10"));
  EXPECT_TRUE(Ctx.checkSat().isUnsat());
  Ctx.pop();

  smt::CheckResult R = Ctx.checkSat();
  ASSERT_TRUE(R.isSat());
  std::optional<Rational> X = R.model().value(TM.mkVar("x", Sort::Int));
  ASSERT_TRUE(X.has_value());
  EXPECT_TRUE(*X <= Rational(5));
}

TEST_F(SolverContextTest, NestedScopes) {
  Ctx.assertTerm(parse("x >= 0"));
  Ctx.push(); // depth 1
  Ctx.assertTerm(parse("x <= 10"));
  Ctx.push(); // depth 2
  Ctx.assertTerm(parse("x >= 7"));
  Ctx.push(); // depth 3
  Ctx.assertTerm(parse("x <= 3"));
  EXPECT_EQ(Ctx.scopeDepth(), 3u);
  EXPECT_TRUE(Ctx.checkSat().isUnsat());
  Ctx.pop(); // back to depth 2: 0 <= x <= 10 && x >= 7
  smt::CheckResult R = Ctx.checkSat();
  ASSERT_TRUE(R.isSat());
  Rational X = *R.model().value(TM.mkVar("x", Sort::Int));
  EXPECT_TRUE(X >= Rational(7) && X <= Rational(10));
  Ctx.pop(); // depth 1
  Ctx.pop(); // depth 0: only x >= 0
  EXPECT_EQ(Ctx.scopeDepth(), 0u);
  EXPECT_TRUE(Ctx.checkSat().isSat());
  // Depth-0 assertions are permanent.
  Ctx.push();
  Ctx.assertTerm(parse("x < 0"));
  EXPECT_TRUE(Ctx.checkSat().isUnsat());
  Ctx.pop();
  EXPECT_TRUE(Ctx.checkSat().isSat());
}

TEST_F(SolverContextTest, AssumptionBasedCore) {
  Ctx.assertTerm(parse("z >= 0"));
  const Term *Low = parse("x <= 5");
  const Term *High = parse("x >= 10");
  const Term *Other = parse("y <= 3");
  smt::CheckResult R = Ctx.checkSat({Low, High, Other});
  ASSERT_TRUE(R.isUnsat());
  // The core must implicate the conflicting pair and spare the bystander.
  EXPECT_FALSE(R.core().contains(Other));
  EXPECT_TRUE(R.core().contains(Low));
  EXPECT_TRUE(R.core().contains(High));
  // Dropping the core assumptions makes the query satisfiable again.
  EXPECT_TRUE(Ctx.checkSat({Other}).isSat());
}

TEST_F(SolverContextTest, CoreFromAssertedState) {
  Ctx.assertTerm(parse("x <= 2"));
  Ctx.push();
  Ctx.assertTerm(parse("x >= 3"));
  smt::CheckResult R = Ctx.checkSat();
  ASSERT_TRUE(R.isUnsat());
  EXPECT_TRUE(R.core().usesAssertions());
  EXPECT_TRUE(R.core().empty());
  Ctx.pop();
}

TEST_F(SolverContextTest, LazyCoreFlagsPermanentAssertions) {
  // Depth-0 assertions carry no selector literal; cores that rest on them
  // must still report assertion participation.
  Ctx.assertTerm(parse("x = 1 || x = 2"));
  smt::CheckResult R = Ctx.checkSat({parse("x != 1"), parse("x != 2")});
  ASSERT_TRUE(R.isUnsat());
  EXPECT_TRUE(R.core().usesAssertions());
}

TEST_F(SolverContextTest, ModelStabilityAcrossScopes) {
  Ctx.assertTerm(parse("x + y = 10 && x - y = 4"));
  smt::CheckResult First = Ctx.checkSat();
  ASSERT_TRUE(First.isSat());
  smt::Model Kept = First.model(); // Value copy.

  // Later activity must not disturb the copied model.
  Ctx.push();
  Ctx.assertTerm(parse("x = 0"));
  EXPECT_TRUE(Ctx.checkSat().isUnsat());
  Ctx.pop();

  Rational X = *Kept.value(TM.mkVar("x", Sort::Int));
  Rational Y = *Kept.value(TM.mkVar("y", Sort::Int));
  EXPECT_EQ(X + Y, Rational(10));
  EXPECT_EQ(X - Y, Rational(4));
}

TEST_F(SolverContextTest, AssumptionEntailmentBatch) {
  // The abstract-reach pattern: assert a post-image once, then decide a
  // batch of entailments by flipping assumption literals.
  Ctx.push();
  Ctx.assertTerm(parse("a = 3*i && i = n && n >= 2"));
  // a = 3n is entailed: assuming its negation must be unsat.
  EXPECT_TRUE(Ctx.checkSat({parse("a != 3*n")}).isUnsat());
  // a >= 6 is entailed.
  EXPECT_TRUE(Ctx.checkSat({parse("a < 6")}).isUnsat());
  // a = 6 is consistent but not entailed.
  EXPECT_TRUE(Ctx.checkSat({parse("a = 6")}).isSat());
  EXPECT_TRUE(Ctx.checkSat({parse("a != 6")}).isSat());
  Ctx.pop();
}

TEST_F(SolverContextTest, LazyPathWithBooleanStructure) {
  Ctx.assertTerm(parse("x = 1 || x = 2"));
  EXPECT_TRUE(Ctx.checkSat().isSat());
  Ctx.push();
  Ctx.assertTerm(parse("x >= 5 || x = 2"));
  smt::CheckResult R = Ctx.checkSat();
  ASSERT_TRUE(R.isSat());
  EXPECT_EQ(*R.model().value(TM.mkVar("x", Sort::Int)), Rational(2));
  // Under the assumption x != 2 the disjunctions have no common solution.
  EXPECT_TRUE(Ctx.checkSat({parse("x != 2")}).isUnsat());
  Ctx.pop();
  EXPECT_TRUE(Ctx.checkSat({parse("x != 2")}).isSat());
}

TEST_F(SolverContextTest, AssumptionCoreThroughLazyPath) {
  Ctx.assertTerm(parse("x = 1 || x = 2")); // Boolean structure: lazy loop.
  const Term *Big = parse("x >= 7");
  const Term *Free = parse("y = 0");
  smt::CheckResult R = Ctx.checkSat({Big, Free});
  ASSERT_TRUE(R.isUnsat());
  EXPECT_TRUE(R.core().contains(Big));
  EXPECT_FALSE(R.core().contains(Free));
}

TEST_F(SolverContextTest, TheoryCombinationThroughContext) {
  // Congruence + arithmetic: x <= y && y <= x forces f(x) = f(y).
  Ctx.push();
  Ctx.assertTerm(parse("x <= y && y <= x"));
  EXPECT_TRUE(Ctx.checkSat({parse("f(x) != f(y)")}).isUnsat());
  EXPECT_TRUE(Ctx.checkSat({parse("f(x) = f(y)")}).isSat());
  Ctx.pop();
  EXPECT_TRUE(Ctx.checkSat({parse("f(x) != f(y)")}).isSat());
}

TEST_F(SolverContextTest, IntegralityAcrossScopes) {
  // Branch-and-bound splits run through the fallback path; scoping must
  // not change the verdicts.
  Ctx.assertTerm(parse("2*x = y"));
  Ctx.push();
  Ctx.assertTerm(parse("y = 3")); // 2x = 3 has no integer solution.
  EXPECT_TRUE(Ctx.checkSat().isUnsat());
  Ctx.pop();
  Ctx.push();
  Ctx.assertTerm(parse("y = 4"));
  smt::CheckResult R = Ctx.checkSat();
  ASSERT_TRUE(R.isSat());
  EXPECT_EQ(*R.model().value(TM.mkVar("x", Sort::Int)), Rational(2));
  Ctx.pop();
}

TEST_F(SolverContextTest, FingerprintTracksScopes) {
  uint64_t Empty = Ctx.assertionFingerprint();
  Ctx.push();
  EXPECT_EQ(Ctx.assertionFingerprint(), Empty); // Push alone: same state.
  Ctx.assertTerm(parse("x = 1"));
  uint64_t WithX = Ctx.assertionFingerprint();
  EXPECT_NE(WithX, Empty);
  Ctx.pop();
  EXPECT_EQ(Ctx.assertionFingerprint(), Empty);
  // Same assertion sequence reproduces the same fingerprint.
  Ctx.push();
  Ctx.assertTerm(parse("x = 1"));
  EXPECT_EQ(Ctx.assertionFingerprint(), WithX);
  Ctx.pop();
}

// --- Façade memoization under context state ---------------------------------

TEST(SmtSolverFacadeTest, MemoKeyedByContextState) {
  TermManager TM;
  SortEnv Env;
  SmtSolver Solver(TM);
  auto parse = [&](const char *Text) {
    auto F = parseFormula(TM, Text, Env);
    EXPECT_TRUE(F.hasValue());
    return F.get();
  };

  const Term *F = parse("x <= 5");
  // Standalone: satisfiable (and the verdict is cached).
  EXPECT_EQ(Solver.checkSat(F), SmtSolver::Status::Sat);
  EXPECT_EQ(Solver.checkSat(F), SmtSolver::Status::Sat);

  // Assert contradicting state into the solver's context: the cache must
  // not replay the stale standalone verdict.
  Solver.context().assertTerm(parse("x >= 10"));
  EXPECT_EQ(Solver.checkSat(F), SmtSolver::Status::Unsat);
  EXPECT_TRUE(Solver.isUnsat(F));

  // The unsat verdict under that state is itself memoized.
  uint64_t Before = Solver.numCacheHits();
  EXPECT_TRUE(Solver.isUnsat(F));
  EXPECT_EQ(Solver.numCacheHits(), Before + 1);
}

TEST(SmtSolverFacadeTest, EntailmentUsesContextState) {
  TermManager TM;
  SortEnv Env;
  SmtSolver Solver(TM);
  auto parse = [&](const char *Text) {
    auto F = parseFormula(TM, Text, Env);
    EXPECT_TRUE(F.hasValue());
    return F.get();
  };
  EXPECT_FALSE(Solver.entails(parse("x >= 1"), parse("x >= 3")));
  Solver.context().push();
  Solver.context().assertTerm(parse("x >= 7"));
  EXPECT_TRUE(Solver.entails(parse("x >= 1"), parse("x >= 3")));
  Solver.context().pop();
  EXPECT_FALSE(Solver.entails(parse("x >= 1"), parse("x >= 3")));
}

// --- Learned-clause garbage collection ---------------------------------------

TEST_F(SolverContextTest, LearnedClausePurgeKeepsPushPopStormBounded) {
  // A long push/pop storm with fresh atoms each round: every round's
  // checks derive new theory lemmas and learned clauses, so without
  // garbage collection the clause database grows linearly with the number
  // of rounds. With a budget, the redundant-clause count must stay
  // bounded while every verdict stays correct (purged lemmas are implied
  // and simply get re-derived when needed).
  constexpr size_t Budget = 60;
  constexpr int Rounds = 150;
  Ctx.setLearnedClauseBudget(Budget);
  for (int Round = 0; Round < Rounds; ++Round) {
    std::string A = std::to_string(Round);
    std::string B = std::to_string(Round + 1);
    Ctx.push();
    // Boolean structure forces the lazy CDCL(T) path.
    Ctx.assertTerm(parse(("x <= " + A + " || y <= " + A).c_str()));
    Ctx.push();
    Ctx.assertTerm(parse(("x >= " + B).c_str()));
    Ctx.assertTerm(parse(("y >= " + B).c_str()));
    EXPECT_TRUE(Ctx.checkSat().isUnsat()) << "round " << Round;
    Ctx.pop();
    // Satisfiable variant over the same encodings: x pinned above the
    // bound forces the y-disjunct.
    EXPECT_TRUE(Ctx.checkSat({parse(("x >= " + B).c_str())}).isSat())
        << "round " << Round;
    Ctx.pop();
    // Bounded at every round, not just at the end (small slack: clauses
    // pinned as reasons of level-0 assignments survive a purge).
    EXPECT_LE(Ctx.stats().RedundantClauses, Budget + 16)
        << "round " << Round;
  }
  smt::ContextStats S = Ctx.stats();
  EXPECT_GT(S.LearnedPurges, 0u);
  EXPECT_GT(S.ClausesPurged, 0u);
  EXPECT_LE(S.RedundantClauses, Budget + 16);
}

TEST_F(SolverContextTest, PurgeDisabledKeepsEveryClause) {
  Ctx.setLearnedClauseBudget(0);
  for (int Round = 0; Round < 30; ++Round) {
    std::string A = std::to_string(Round);
    Ctx.push();
    Ctx.assertTerm(parse(("x <= " + A + " || y <= " + A).c_str()));
    Ctx.assertTerm(parse(("x >= " + std::to_string(Round + 1)).c_str()));
    Ctx.assertTerm(parse(("y >= " + std::to_string(Round + 1)).c_str()));
    EXPECT_TRUE(Ctx.checkSat().isUnsat());
    Ctx.pop();
  }
  EXPECT_EQ(Ctx.stats().LearnedPurges, 0u);
  EXPECT_EQ(Ctx.stats().ClausesPurged, 0u);
}

// --- Differential check against the one-shot façade -------------------------

TEST(SolverContextDifferentialTest, MatchesOneShotVerdicts) {
  TermManager TM;
  SortEnv Env;
  auto parse = [&](const char *Text) {
    auto F = parseFormula(TM, Text, Env);
    EXPECT_TRUE(F.hasValue());
    return F.get();
  };

  const char *Prefixes[] = {
      "x0 = 0 && x1 = x0 + 1 && x2 = x1 + 2 && x3 = x2 + 3",
      "x0 >= 0 && x1 = x0 + 1 && x2 = 2*x1",
  };
  const char *Queries[] = {
      "x3 <= 5", "x3 >= 7", "x2 = 2", "x2 != 2", "x1 > x0", "x3 < x0",
  };
  for (const char *P : Prefixes) {
    smt::SolverContext Ctx(TM);
    Ctx.assertTerm(parse(P));
    for (const char *Q : Queries) {
      SmtSolver OneShot(TM);
      bool Expected =
          OneShot.checkSat(TM.mkAnd(parse(P), parse(Q))) ==
          SmtSolver::Status::Sat;
      EXPECT_EQ(Ctx.checkSat({parse(Q)}).isSat(), Expected)
          << P << "  |-?  " << Q;
    }
  }
}

TEST(SolverContextInterruption, StormCancelledAtRandomCheckpoints) {
  // Push/pop storm with cooperative cancellation: every check runs under
  // a fresh ResourceController with a tiny randomized pivot (or SAT
  // conflict) budget, so checks are interrupted at arbitrary points in
  // the CDCL(T) loop. An interrupted check must answer Unknown — never a
  // verdict — and leave the context fully usable: the identical state is
  // differentially re-solved on the stormed context (uncancelled) and on
  // a fresh context built from the mirrored assertion stack.
  TermManager TM;
  SortEnv Env;
  smt::SolverContext Ctx(TM);
  std::mt19937_64 Rng(0x17a9c0ffull);

  auto parse = [&](const std::string &Text) {
    auto F = parseFormula(TM, Text, Env);
    EXPECT_TRUE(F.hasValue()) << F.error().render();
    return F.get();
  };
  // Formula pool biased toward pivot- and split-heavy shapes; the
  // disjunctions route through the lazy CDCL(T) path.
  auto randomFormula = [&]() {
    std::string X = "x" + std::to_string(Rng() % 4);
    std::string Y = "x" + std::to_string(Rng() % 4);
    std::string C = std::to_string(static_cast<int64_t>(Rng() % 15) - 7);
    switch (Rng() % 6) {
    case 0:
      return parse(X + " + " + Y + " <= " + C);
    case 1:
      return parse("2*" + X + " = " + Y + " + " + C);
    case 2:
      return parse(X + " != " + C);
    case 3:
      return parse(X + " >= " + C);
    case 4:
      return parse(X + " <= " + C + " || " + Y + " >= " + C);
    default:
      return parse(X + " < " + Y + " || " + X + " = " + C);
    }
  };

  std::vector<std::vector<const Term *>> Mirror; // One entry per scope.
  Mirror.emplace_back(); // Depth 0.
  int Interrupts = 0;
  for (int Round = 0; Round < 120; ++Round) {
    switch (Rng() % 4) {
    case 0: {
      Ctx.push();
      Mirror.emplace_back();
      const Term *F = randomFormula();
      Ctx.assertTerm(F);
      Mirror.back().push_back(F);
      break;
    }
    case 1:
      if (Mirror.size() > 1) {
        Ctx.pop();
        Mirror.pop_back();
      }
      break;
    default: {
      const Term *F = randomFormula();
      Ctx.assertTerm(F);
      Mirror.back().push_back(F);
      break;
    }
    }

    ResourceLimits Limits;
    if (Rng() % 2)
      Limits.Pivots = 1 + Rng() % 20;
    else
      Limits.SatConflicts = 1 + Rng() % 3;
    ResourceController RC(Limits);
    RC.start();
    smt::CheckResult R = smt::CheckResult::unknown();
    {
      ResourceScope Scope(RC);
      R = Ctx.checkSat();
    }
    if (R.isUnknown()) {
      ++Interrupts;
      EXPECT_FALSE(R.isSat());
      EXPECT_FALSE(R.isUnsat());
    }

    // Differential re-solve: stormed context (no controller) vs. a fresh
    // context replaying the mirrored assertion stack scope by scope.
    smt::CheckResult Clean = Ctx.checkSat();
    ASSERT_FALSE(Clean.isUnknown());
    smt::SolverContext Fresh(TM);
    for (size_t S = 0; S < Mirror.size(); ++S) {
      if (S != 0)
        Fresh.push();
      for (const Term *F : Mirror[S])
        Fresh.assertTerm(F);
    }
    ASSERT_EQ(Clean.isSat(), Fresh.checkSat().isSat())
        << "context diverged after interruption in round " << Round;
    if (!R.isUnknown()) {
      ASSERT_EQ(R.isSat(), Clean.isSat())
          << "budgeted verdict diverged in round " << Round;
    }
  }
  // The budgets are tight enough that some checks must have tripped.
  EXPECT_GT(Interrupts, 0);
}

} // namespace
