//===- tests/smt_sat_test.cpp - CDCL SAT solver tests ---------------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/SatSolver.h"

#include <gtest/gtest.h>

#include <random>

using namespace pathinv;

namespace {

TEST(SatSolverTest, EmptyInstanceIsSat) {
  SatSolver S;
  EXPECT_EQ(S.solve(), SatSolver::Result::Sat);
}

TEST(SatSolverTest, UnitClauses) {
  SatSolver S;
  int A = S.addVar();
  int B = S.addVar();
  S.addClause({Lit(A, false)});
  S.addClause({Lit(B, true)});
  ASSERT_EQ(S.solve(), SatSolver::Result::Sat);
  EXPECT_TRUE(S.modelValue(A));
  EXPECT_FALSE(S.modelValue(B));
}

TEST(SatSolverTest, ContradictoryUnits) {
  SatSolver S;
  int A = S.addVar();
  S.addClause({Lit(A, false)});
  EXPECT_FALSE(S.addClause({Lit(A, true)}));
  EXPECT_EQ(S.solve(), SatSolver::Result::Unsat);
}

TEST(SatSolverTest, ImplicationChain) {
  // a, a->b, b->c, c->d forces all true.
  SatSolver S;
  int V[4];
  for (int &Var : V)
    Var = S.addVar();
  S.addClause({Lit(V[0], false)});
  for (int I = 0; I < 3; ++I)
    S.addClause({Lit(V[I], true), Lit(V[I + 1], false)});
  ASSERT_EQ(S.solve(), SatSolver::Result::Sat);
  for (int Var : V)
    EXPECT_TRUE(S.modelValue(Var));
}

TEST(SatSolverTest, RequiresConflictAnalysis) {
  // (a|b) (a|!b) (!a|b) (!a|!b) is unsat.
  SatSolver S;
  int A = S.addVar(), B = S.addVar();
  S.addClause({Lit(A, false), Lit(B, false)});
  S.addClause({Lit(A, false), Lit(B, true)});
  S.addClause({Lit(A, true), Lit(B, false)});
  S.addClause({Lit(A, true), Lit(B, true)});
  EXPECT_EQ(S.solve(), SatSolver::Result::Unsat);
}

TEST(SatSolverTest, TautologyIgnored) {
  SatSolver S;
  int A = S.addVar();
  EXPECT_TRUE(S.addClause({Lit(A, false), Lit(A, true)}));
  EXPECT_EQ(S.solve(), SatSolver::Result::Sat);
}

/// Pigeonhole principle: N+1 pigeons into N holes, unsat. Exercises clause
/// learning heavily.
static void addPigeonhole(SatSolver &S, int Holes) {
  int Pigeons = Holes + 1;
  std::vector<std::vector<int>> Var(Pigeons, std::vector<int>(Holes));
  for (int P = 0; P < Pigeons; ++P)
    for (int H = 0; H < Holes; ++H)
      Var[P][H] = S.addVar();
  for (int P = 0; P < Pigeons; ++P) {
    std::vector<Lit> AtLeastOne;
    for (int H = 0; H < Holes; ++H)
      AtLeastOne.push_back(Lit(Var[P][H], false));
    S.addClause(std::move(AtLeastOne));
  }
  for (int H = 0; H < Holes; ++H)
    for (int P1 = 0; P1 < Pigeons; ++P1)
      for (int P2 = P1 + 1; P2 < Pigeons; ++P2)
        S.addClause({Lit(Var[P1][H], true), Lit(Var[P2][H], true)});
}

TEST(SatSolverTest, Pigeonhole4Into3) {
  SatSolver S;
  addPigeonhole(S, 3);
  EXPECT_EQ(S.solve(), SatSolver::Result::Unsat);
  EXPECT_GT(S.numConflicts(), 0u);
}

TEST(SatSolverTest, Pigeonhole6Into5) {
  SatSolver S;
  addPigeonhole(S, 5);
  EXPECT_EQ(S.solve(), SatSolver::Result::Unsat);
}

TEST(SatSolverTest, IncrementalBlockingClauses) {
  // Enumerate all 8 models of 3 free variables by blocking each.
  SatSolver S;
  int V[3];
  for (int &Var : V)
    Var = S.addVar();
  // Touch the variables so they participate in solving.
  S.addClause({Lit(V[0], false), Lit(V[0], true)});
  int Models = 0;
  while (S.solve() == SatSolver::Result::Sat && Models < 20) {
    ++Models;
    std::vector<Lit> Block;
    for (int Var : V)
      Block.push_back(Lit(Var, S.modelValue(Var)));
    if (!S.addClause(std::move(Block)))
      break;
  }
  EXPECT_EQ(Models, 8);
}

/// Exhaustive truth-table reference check.
static bool bruteForceSat(int NumVars,
                          const std::vector<std::vector<Lit>> &Clauses) {
  for (uint32_t Mask = 0; Mask < (1u << NumVars); ++Mask) {
    bool All = true;
    for (const auto &C : Clauses) {
      bool Any = false;
      for (Lit L : C) {
        bool Val = (Mask >> L.var()) & 1;
        if (Val != L.negated()) {
          Any = true;
          break;
        }
      }
      if (!Any) {
        All = false;
        break;
      }
    }
    if (All)
      return true;
  }
  return false;
}

class SatRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(SatRandomTest, AgreesWithBruteForce) {
  std::mt19937_64 Rng(GetParam() * 7919);
  for (int Round = 0; Round < 80; ++Round) {
    int NumVars = 3 + static_cast<int>(Rng() % 8); // up to 10 vars
    int NumClauses = 2 + static_cast<int>(Rng() % (NumVars * 5));
    std::vector<std::vector<Lit>> Clauses;
    SatSolver S;
    for (int I = 0; I < NumVars; ++I)
      S.addVar();
    for (int C = 0; C < NumClauses; ++C) {
      int Width = 1 + static_cast<int>(Rng() % 3);
      std::vector<Lit> Clause;
      for (int I = 0; I < Width; ++I)
        Clause.push_back(
            Lit(static_cast<int>(Rng() % NumVars), Rng() & 1));
      Clauses.push_back(Clause);
      S.addClause(Clause);
    }
    bool Expected = bruteForceSat(NumVars, Clauses);
    bool Actual = S.solve() == SatSolver::Result::Sat;
    ASSERT_EQ(Actual, Expected) << "seed " << GetParam() << " round "
                                << Round;
    if (Actual) {
      // The model must satisfy every clause.
      for (const auto &C : Clauses) {
        bool Any = false;
        for (Lit L : C)
          if (S.modelValue(L.var()) != L.negated())
            Any = true;
        EXPECT_TRUE(Any);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatRandomTest, ::testing::Range(1, 9));

} // namespace
