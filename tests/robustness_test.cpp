//===- tests/robustness_test.cpp - Resource governance & degradation ------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The resource-governance contract end-to-end: every budget in the
// taxonomy, exhausted on the paper's six programs, must yield either the
// correct verdict or Unknown with a machine-readable reason — never a
// crash, never a wrong verdict, never an unusable verifier. The same
// verifier object is reused after each exhaustion to prove the solver
// stack unwound cleanly. With PATHINV_FAULT_INJECT compiled in, a
// deterministic seed sweep drives the injection sites (solver
// checkpoints, arena growth, BigInt promotion) through the same
// contract.
//
//===----------------------------------------------------------------------===//

#include "core/Resource.h"
#include "core/Verifier.h"
#include "support/FaultInject.h"

#include "TestPrograms.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

using namespace pathinv;

namespace {

// The enum's name is shadowed by the member of the same name, so pull the
// type out with decltype.
using Verdict = decltype(EngineResult::Verdict);

struct ProgSpec {
  const char *Name;
  const char *Source;
  Verdict Expected;
};

const std::vector<ProgSpec> &paperPrograms() {
  static const std::vector<ProgSpec> Progs = {
      {"forward", testprogs::Forward, Verdict::Safe},
      {"init_check", testprogs::InitCheck, Verdict::Safe},
      {"partition", testprogs::Partition, Verdict::Safe},
      {"init_check_buggy", testprogs::InitCheckBuggy, Verdict::Unsafe},
      {"scalar_bug", testprogs::ScalarBug, Verdict::Unsafe},
      {"straight_safe", testprogs::StraightSafe, Verdict::Safe},
  };
  return Progs;
}

bool isKnownReason(const std::string &Reason) {
  static const std::set<std::string> Taxonomy = {
      "deadline",    "memory",         "sat_conflicts",
      "pivots",      "bnb_nodes",      "synth_combos",
      "arg_expansions", "refinements", "pdr_obligations",
      "cancelled"};
  return Taxonomy.count(Reason) != 0;
}

EngineResult runOnce(Verifier &V, const char *Source) {
  Expected<EngineResult> R = V.verifySource(Source);
  if (!R.hasValue()) {
    ADD_FAILURE() << R.error().render();
    return EngineResult();
  }
  return R.get();
}

/// The contract every governed run must satisfy: the expected verdict, or
/// Unknown with a taxonomy reason and partial stats. Anything else —
/// wrong verdict, Unknown without a reason, unknown reason string — is a
/// governance bug.
void expectGracefulOutcome(const EngineResult &R, const ProgSpec &Prog,
                           const char *What) {
  if (R.Verdict == Prog.Expected) {
    return; // Finished (soundly) despite the pressure.
  }
  ASSERT_EQ(R.Verdict, Verdict::Unknown)
      << Prog.Name << " under " << What << ": wrong verdict";
  EXPECT_FALSE(R.UnknownReason.empty())
      << Prog.Name << " under " << What << ": Unknown without a reason";
  EXPECT_TRUE(isKnownReason(R.UnknownReason))
      << Prog.Name << " under " << What << ": unknown reason '"
      << R.UnknownReason << "'";
}

TEST(RobustnessTest, EveryBudgetExhaustsToReasonedUnknown) {
  struct BudgetCase {
    const char *Name;
    ResourceLimits Limits;
  };
  std::vector<BudgetCase> Cases;
  {
    BudgetCase C;
    C.Name = "sat_conflicts";
    C.Limits.SatConflicts = 2;
    Cases.push_back(C);
  }
  {
    BudgetCase C;
    C.Name = "pivots";
    C.Limits.Pivots = 40;
    Cases.push_back(C);
  }
  {
    BudgetCase C;
    C.Name = "bnb_nodes";
    C.Limits.BnbNodes = 2;
    Cases.push_back(C);
  }
  {
    BudgetCase C;
    C.Name = "synth_combos";
    C.Limits.SynthCombos = 5;
    Cases.push_back(C);
  }
  {
    BudgetCase C;
    C.Name = "arg_expansions";
    C.Limits.ArgExpansions = 3;
    Cases.push_back(C);
  }
  {
    BudgetCase C;
    C.Name = "refinements";
    C.Limits.Refinements = 1;
    Cases.push_back(C);
  }

  for (const ProgSpec &Prog : paperPrograms()) {
    for (const BudgetCase &BC : Cases) {
      Verifier V;
      V.options().Limits = BC.Limits;
      EngineResult R = runOnce(V, Prog.Source);
      expectGracefulOutcome(R, Prog, BC.Name);
    }
  }
}

TEST(RobustnessTest, DeadlineTripsWithReasonAndPartialStats) {
  // Partition needs seconds of solving; a 250 ms deadline must trip, and
  // the Unknown must carry the reason plus best-so-far state.
  Verifier V;
  V.options().Limits.TimeoutSeconds = 0.25;
  EngineResult R = runOnce(V, testprogs::Partition);
  ASSERT_EQ(R.Verdict, Verdict::Unknown);
  EXPECT_EQ(R.UnknownReason, "deadline");
  EXPECT_FALSE(R.Note.empty());
  // Partial stats survive: the run did real work before the trip.
  EXPECT_GT(R.Stats.Resources.Pivots + R.Stats.Resources.SatConflicts +
                R.Stats.Resources.ArgExpansions,
            0u);
}

TEST(RobustnessTest, MemoryCeilingTripsWithReason) {
  // A 4 KiB tracked-heap ceiling is below even the parsed program's term
  // arena, so the first amortized poll must trip with reason "memory".
  Verifier V;
  V.options().Limits.MemoryBytes = 4096;
  EngineResult R = runOnce(V, testprogs::Partition);
  ASSERT_EQ(R.Verdict, Verdict::Unknown);
  EXPECT_EQ(R.UnknownReason, "memory");
  EXPECT_GT(R.Stats.PeakMemoryBytes, 4096u);
}

TEST(RobustnessTest, VerifierStaysUsableAfterExhaustion) {
  // One verifier per program: a run throttled into Unknown, then the same
  // verifier (same term manager, same facade solver and caches) with the
  // limits lifted must produce the correct verdict. Interrupted results
  // leaking into the solver's memo cache, or a solver object left
  // mid-scope, would surface here.
  for (const ProgSpec &Prog : paperPrograms()) {
    Verifier V;
    V.options().Limits.Pivots = 25;
    V.options().Limits.SatConflicts = 3;
    EngineResult Throttled = runOnce(V, Prog.Source);
    expectGracefulOutcome(Throttled, Prog, "tight pivots+conflicts");

    V.options().Limits = ResourceLimits();
    EngineResult Clean = runOnce(V, Prog.Source);
    EXPECT_EQ(Clean.Verdict, Prog.Expected)
        << Prog.Name << ": wrong verdict after exhausted run";
    EXPECT_TRUE(Clean.UnknownReason.empty());
  }
}

TEST(RobustnessTest, EscalationLadderIsObservable) {
  // A starved synthesis budget forces RefineResult::ResourceOut; when the
  // controller itself has not tripped the engine retries with the
  // interval backend. This exercises the ladder code path; the contract
  // stays graceful either way.
  for (const ProgSpec &Prog : paperPrograms()) {
    Verifier V;
    V.options().Limits.SynthCombos = 8;
    EngineResult R = runOnce(V, Prog.Source);
    expectGracefulOutcome(R, Prog, "synth_combos=8");
  }
}

//===----------------------------------------------------------------------===//
// PDR backend under the same governance contract
//===----------------------------------------------------------------------===//

TEST(RobustnessTest, PdrBudgetsExhaustToReasonedUnknown) {
  struct BudgetCase {
    const char *Name;
    ResourceLimits Limits;
  };
  std::vector<BudgetCase> Cases;
  {
    BudgetCase C;
    C.Name = "pdr_obligations";
    C.Limits.PdrObligations = 2;
    Cases.push_back(C);
  }
  {
    BudgetCase C;
    C.Name = "sat_conflicts";
    C.Limits.SatConflicts = 2;
    Cases.push_back(C);
  }
  {
    BudgetCase C;
    C.Name = "pivots";
    C.Limits.Pivots = 40;
    Cases.push_back(C);
  }
  {
    BudgetCase C;
    C.Name = "synth_combos";
    C.Limits.SynthCombos = 5;
    Cases.push_back(C);
  }

  for (const ProgSpec &Prog : paperPrograms()) {
    for (const BudgetCase &BC : Cases) {
      Verifier V;
      V.options().Engine = EngineKind::Pdr;
      V.options().Limits = BC.Limits;
      EngineResult R = runOnce(V, Prog.Source);
      expectGracefulOutcome(R, Prog, BC.Name);
    }
  }
}

TEST(RobustnessTest, PdrEngineReusableAfterInterrupt) {
  // An obligation budget stops PDR mid-frame; the same verifier with the
  // limits lifted must then prove the program. Frames, the obligation
  // queue, or the incremental frame-query context left in a wedged state
  // would surface here.
  Verifier V;
  V.options().Engine = EngineKind::Pdr;
  V.options().Limits.PdrObligations = 3;
  EngineResult Throttled = runOnce(V, testprogs::Partition);
  expectGracefulOutcome(Throttled,
                        {"partition", testprogs::Partition, Verdict::Safe},
                        "pdr_obligations=3");

  V.options().Limits = ResourceLimits();
  EngineResult Clean = runOnce(V, testprogs::Partition);
  EXPECT_EQ(Clean.Verdict, Verdict::Safe)
      << "pdr wrong verdict after interrupted run: " << Clean.Note;
}

//===----------------------------------------------------------------------===//
// Portfolio racing under the same governance contract
//===----------------------------------------------------------------------===//

TEST(RobustnessTest, PortfolioBudgetsExhaustWithPerEngineAttribution) {
  // Step budgets tight enough to stop both lanes (and the shared probe)
  // on every nontrivial program. The portfolio must never convert double
  // exhaustion into a verdict, and its combined Unknown must attribute
  // each engine's reason by name.
  ResourceLimits Tight;
  Tight.SatConflicts = 2;
  Tight.Pivots = 40;
  Tight.BnbNodes = 2;
  Tight.SynthCombos = 5;
  Tight.ArgExpansions = 3;
  Tight.Refinements = 1;
  Tight.PdrObligations = 2;

  for (const ProgSpec &Prog : paperPrograms()) {
    Verifier V;
    V.options().Engine = EngineKind::Portfolio;
    V.options().Limits = Tight;
    EngineResult R = runOnce(V, Prog.Source);
    expectGracefulOutcome(R, Prog, "portfolio tight budgets");
    if (R.Verdict == Verdict::Unknown) {
      EXPECT_NE(R.Note.find("cegar:"), std::string::npos)
          << Prog.Name << ": " << R.Note;
      EXPECT_NE(R.Note.find("pdr:"), std::string::npos)
          << Prog.Name << ": " << R.Note;
    }
  }
}

TEST(RobustnessTest, PortfolioDeadlineNeverBecomesAVerdict) {
  // Partition needs seconds under either engine and the probe alike; a
  // 250 ms wall deadline must surface as Unknown/"deadline" with both
  // lanes' exhaustion attributed, never as a guessed verdict.
  Verifier V;
  V.options().Engine = EngineKind::Portfolio;
  V.options().Limits.TimeoutSeconds = 0.25;
  EngineResult R = runOnce(V, testprogs::Partition);
  ASSERT_EQ(R.Verdict, Verdict::Unknown);
  EXPECT_EQ(R.UnknownReason, "deadline");
  EXPECT_NE(R.Note.find("portfolio exhausted"), std::string::npos) << R.Note;
  EXPECT_NE(R.Note.find("cegar:"), std::string::npos) << R.Note;
  EXPECT_NE(R.Note.find("pdr:"), std::string::npos) << R.Note;
}

TEST(RobustnessTest, PortfolioReusableAfterInterrupt) {
  // Same contract as the single engines: a deadline-interrupted portfolio
  // run, then the same verifier unrestricted must reach the verdict.
  Verifier V;
  V.options().Engine = EngineKind::Portfolio;
  V.options().Limits.TimeoutSeconds = 0.2;
  EngineResult Throttled = runOnce(V, testprogs::InitCheck);
  expectGracefulOutcome(Throttled,
                        {"init_check", testprogs::InitCheck, Verdict::Safe},
                        "portfolio deadline=0.2");

  V.options().Limits = ResourceLimits();
  EngineResult Clean = runOnce(V, testprogs::InitCheck);
  EXPECT_EQ(Clean.Verdict, Verdict::Safe)
      << "portfolio wrong verdict after interrupted run: " << Clean.Note;
}

#if defined(PATHINV_FAULT_INJECT)

TEST(RobustnessTest, FaultInjectionSweepIsGraceful) {
  // Deterministic site-count sweep: the N-th visit of any injection site
  // fails (solver checkpoints report a deadline fault; arena growth and
  // BigInt promotion park a memory fault for the controller's next
  // poll). Every injected run must satisfy the graceful-outcome
  // contract, and the verifier must produce the correct verdict once the
  // harness is disarmed.
  const uint64_t Seeds[] = {1, 2, 3, 4, 5, 8, 12, 20, 35, 60, 120, 400};
  const ProgSpec Cheap[] = {
      {"forward", testprogs::Forward, Verdict::Safe},
      {"init_check", testprogs::InitCheck, Verdict::Safe},
      {"init_check_buggy", testprogs::InitCheckBuggy, Verdict::Unsafe},
      {"scalar_bug", testprogs::ScalarBug, Verdict::Unsafe},
      {"straight_safe", testprogs::StraightSafe, Verdict::Safe},
  };
  for (const ProgSpec &Prog : Cheap) {
    for (uint64_t Seed : Seeds) {
      Verifier V;
      fault::arm(Seed);
      EngineResult Injected = runOnce(V, Prog.Source);
      fault::disarm();
      expectGracefulOutcome(Injected, Prog, "fault injection");

      EngineResult Clean = runOnce(V, Prog.Source);
      EXPECT_EQ(Clean.Verdict, Prog.Expected)
          << Prog.Name << " seed " << Seed
          << ": wrong verdict after injected run";
    }
  }
}

TEST(RobustnessTest, FaultInjectionSweepCoversPdrAndPortfolio) {
  // The same deterministic sweep through the PDR frame loop and the
  // portfolio driver (lanes + shared probe). Kept to quickly decidable
  // programs so each injected run exercises the recovery path, not the
  // solver's endurance.
  const uint64_t Seeds[] = {1, 2, 3, 5, 8, 20, 60};
  const ProgSpec Cheap[] = {
      {"straight_safe", testprogs::StraightSafe, Verdict::Safe},
      {"init_check_buggy", testprogs::InitCheckBuggy, Verdict::Unsafe},
      {"scalar_bug", testprogs::ScalarBug, Verdict::Unsafe},
  };
  for (EngineKind Kind : {EngineKind::Pdr, EngineKind::Portfolio}) {
    for (const ProgSpec &Prog : Cheap) {
      for (uint64_t Seed : Seeds) {
        Verifier V;
        V.options().Engine = Kind;
        fault::arm(Seed);
        EngineResult Injected = runOnce(V, Prog.Source);
        fault::disarm();
        expectGracefulOutcome(Injected, Prog, engineKindName(Kind));

        EngineResult Clean = runOnce(V, Prog.Source);
        EXPECT_EQ(Clean.Verdict, Prog.Expected)
            << Prog.Name << " seed " << Seed << " under "
            << engineKindName(Kind) << ": wrong verdict after injected run";
      }
    }
  }
}

#else

TEST(RobustnessTest, FaultInjectionSweepIsGraceful) {
  GTEST_SKIP() << "compiled without PATHINV_FAULT_INJECT";
}

TEST(RobustnessTest, FaultInjectionSweepCoversPdrAndPortfolio) {
  GTEST_SKIP() << "compiled without PATHINV_FAULT_INJECT";
}

#endif

} // namespace
