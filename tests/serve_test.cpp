//===- tests/serve_test.cpp - pathinvd service core -----------------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The pathinvd service contract, end to end against the in-process
// Server (the transports are thin; the logic under test lives here):
//
//  * concurrent jobs on a worker pool produce exactly the single-shot
//    verdicts — per-worker solver stacks mean no cross-job interference;
//  * the retry/escalation ladder is deterministic and bounded, switches
//    lanes as documented, and ends in a reasoned Unknown, never a hang;
//  * the verdict cache serves only revalidated entries: hits replay or
//    re-check, tampered/poisoned entries are rejected and recomputed
//    (cost: time; never a wrong answer), Unknowns are never cached;
//  * admission control sheds load with machine-readable rejections;
//  * graceful drain answers every submitted job exactly once;
//  * a worker survives budget exhaustion and keeps serving (same stack);
//  * with PATHINV_FAULT_INJECT compiled in: injected spawn/admission/
//    cache-insert failures degrade one worker / one job / one cache
//    entry, never the process;
//  * an adversarial mixed sweep (fuzz-seeded jobs with constructed
//    ground truth + hostile input + budget-exhausting jobs, from
//    concurrent clients) yields zero crashes, zero wrong verdicts, and a
//    machine-readable line for every single request.
//
//===----------------------------------------------------------------------===//

#include "core/Fingerprint.h"
#include "core/Verifier.h"
#include "fuzz/Fuzz.h"
#include "serve/Server.h"
#include "serve/Transport.h"
#include "support/BigInt.h"
#include "support/FaultInject.h"

#include "TestPrograms.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace pathinv;
using namespace pathinv::serve;

namespace {

const std::set<std::string> &reasonTaxonomy() {
  static const std::set<std::string> Taxonomy = {
      "deadline",       "memory",      "sat_conflicts",  "pivots",
      "bnb_nodes",      "synth_combos", "arg_expansions", "refinements",
      "pdr_obligations", "cancelled"};
  return Taxonomy;
}

/// Blocking submit against a Server (runSync exists, but tests also need
/// the many-jobs-in-flight shape, so collect through this helper).
class ResponseCollector {
public:
  void expect(size_t N) {
    std::lock_guard<std::mutex> Lock(Mu);
    Expected += N;
  }

  Server::ResponseFn sink() {
    return [this](const JobResponse &R) {
      std::lock_guard<std::mutex> Lock(Mu);
      Responses.push_back(R);
      Cv.notify_all();
    };
  }

  /// Waits until every expected response arrived (fails the test on a
  /// wedged service — that is the point of the deadline).
  bool waitAll(double DeadlineSeconds = 240) {
    std::unique_lock<std::mutex> Lock(Mu);
    return Cv.wait_for(Lock,
                       std::chrono::duration<double>(DeadlineSeconds),
                       [&] { return Responses.size() >= Expected; });
  }

  std::vector<JobResponse> take() {
    std::lock_guard<std::mutex> Lock(Mu);
    return Responses;
  }

private:
  std::mutex Mu;
  std::condition_variable Cv;
  std::vector<JobResponse> Responses;
  size_t Expected = 0;
};

JobRequest verifyReq(std::string Id, std::string Program) {
  JobRequest Req;
  Req.Id = std::move(Id);
  Req.Op = "verify";
  Req.Program = std::move(Program);
  return Req;
}

/// Small budgets that decide the paper-scale programs instantly but are
/// still finite, so a hung job fails fast instead of wedging the suite.
ServeOptions fastOptions(unsigned Workers) {
  ServeOptions Opts;
  Opts.Workers = Workers;
  Opts.BackoffBaseSeconds = 0.001; // Tests should not sleep for real.
  Opts.BackoffCapSeconds = 0.01;
  Opts.DefaultLimits.TimeoutSeconds = 120;
  return Opts;
}

/// A request whose every attempt exhausts: tiny step budgets on the
/// partition program (the synthesis hotspot), no wall deadline involved,
/// so the exhaustion reason is deterministic step counting.
JobRequest exhaustingReq(std::string Id, int MaxAttempts) {
  JobRequest Req = verifyReq(std::move(Id), testprogs::Partition);
  Req.Engine = EngineKind::Cegar;
  Req.EngineSet = true;
  Req.Limits.SatConflicts = 20;
  Req.Limits.Pivots = 50;
  Req.Limits.BnbNodes = 20;
  Req.Limits.SynthCombos = 20;
  Req.Limits.ArgExpansions = 10;
  Req.Limits.Refinements = 2;
  Req.Limits.PdrObligations = 10;
  Req.MaxAttempts = MaxAttempts;
  Req.UseCache = false;
  return Req;
}

Fingerprint fingerprintOf(const std::string &Source) {
  Verifier V;
  Expected<Program> P = V.loadSource(Source);
  EXPECT_TRUE(P.hasValue());
  return fingerprintProgram(P.get());
}

} // namespace

//===----------------------------------------------------------------------===//
// Concurrent stress: pool verdicts == single-shot verdicts.
//===----------------------------------------------------------------------===//

TEST(ServeConcurrency, PoolVerdictsMatchSingleShot) {
  struct Case {
    const char *Source;
    char Expected;
  };
  const std::vector<Case> Cases = {
      {testprogs::Forward, 'S'},        {testprogs::InitCheck, 'S'},
      {testprogs::Partition, 'S'},      {testprogs::InitCheckBuggy, 'U'},
      {testprogs::ScalarBug, 'U'},      {testprogs::StraightSafe, 'S'},
  };
  Server Srv(fastOptions(3));
  ResponseCollector Collector;
  constexpr int Rounds = 4;
  Collector.expect(Cases.size() * Rounds);
  // Four client threads race submissions of every program; the cache is
  // bypassed so every job really verifies on whatever worker takes it.
  std::vector<std::thread> Clients;
  for (int T = 0; T < Rounds; ++T)
    Clients.emplace_back([&, T] {
      for (size_t I = 0; I < Cases.size(); ++I) {
        JobRequest Req =
            verifyReq("c" + std::to_string(T) + "-" + std::to_string(I),
                      Cases[I].Source);
        Req.UseCache = false;
        Srv.submit(std::move(Req), Collector.sink());
      }
    });
  for (auto &C : Clients)
    C.join();
  ASSERT_TRUE(Collector.waitAll());
  auto Responses = Collector.take();
  ASSERT_EQ(Responses.size(), Cases.size() * Rounds);
  for (const JobResponse &R : Responses) {
    ASSERT_EQ(R.Status, "ok") << R.Id << ": " << R.Error;
    size_t Case = std::stoul(R.Id.substr(R.Id.find('-') + 1));
    EXPECT_EQ(R.Verdict, Cases[Case].Expected)
        << R.Id << " note: " << R.Note;
    EXPECT_EQ(R.CacheDisposition, "bypass");
  }
}

//===----------------------------------------------------------------------===//
// Retry ladder: deterministic, bounded, lane-switching, reasoned.
//===----------------------------------------------------------------------===//

TEST(ServeLadder, DeterministicAcrossFreshServers) {
  // Two fresh single-worker servers must walk the identical ladder for
  // the identical request: same attempt count, same final lane, same
  // machine-readable reason, same ladder trace in the note.
  auto RunOnce = [] {
    Server Srv(fastOptions(1));
    return Srv.runSync(exhaustingReq("ladder", 3));
  };
  JobResponse A = RunOnce();
  JobResponse B = RunOnce();
  ASSERT_EQ(A.Status, "ok");
  EXPECT_EQ(A.Verdict, '?');
  EXPECT_EQ(A.Attempts, 3) << A.Note;
  ASSERT_FALSE(A.UnknownReason.empty());
  EXPECT_TRUE(reasonTaxonomy().count(A.UnknownReason)) << A.UnknownReason;
  // Attempts 0-1 stay on the requested cegar lane, attempt 2 switches to
  // the pdr lane.
  EXPECT_EQ(A.EngineUsed, "pdr") << A.Note;
  EXPECT_NE(A.Note.find("ladder: cegar["), std::string::npos) << A.Note;
  EXPECT_NE(A.Note.find("-> pdr"), std::string::npos) << A.Note;

  EXPECT_EQ(A.Verdict, B.Verdict);
  EXPECT_EQ(A.Attempts, B.Attempts);
  EXPECT_EQ(A.EngineUsed, B.EngineUsed);
  EXPECT_EQ(A.UnknownReason, B.UnknownReason);
  EXPECT_EQ(A.Note, B.Note);
}

TEST(ServeLadder, EscalationDecidesWhatTheFirstAttemptCannot) {
  // First attempt exhausts; the ladder's budget escalation (x4 per rung)
  // must eventually decide the program — this is the "retry with larger
  // budgets" half of the contract actually changing an answer.
  Server Srv(fastOptions(1));
  JobRequest Req = verifyReq("esc", testprogs::Forward);
  Req.Engine = EngineKind::Cegar;
  Req.EngineSet = true;
  Req.Limits.Refinements = 1; // One refinement cannot decide Forward...
  Req.MaxAttempts = 6;        // ...but 1*4^k grows past any real need.
  Req.UseCache = false;
  JobResponse R = Srv.runSync(std::move(Req));
  ASSERT_EQ(R.Status, "ok");
  EXPECT_EQ(R.Verdict, 'S') << R.Note;
  EXPECT_GT(R.Attempts, 1) << R.Note;
  ServerStats S = Srv.stats();
  EXPECT_EQ(S.Retries, static_cast<uint64_t>(R.Attempts - 1));
}

TEST(ServeLadder, SingleAttemptReportsReasonedUnknown) {
  Server Srv(fastOptions(1));
  JobResponse R = Srv.runSync(exhaustingReq("one", 1));
  ASSERT_EQ(R.Status, "ok");
  EXPECT_EQ(R.Verdict, '?');
  EXPECT_EQ(R.Attempts, 1);
  EXPECT_TRUE(reasonTaxonomy().count(R.UnknownReason)) << R.UnknownReason;
  // No retry happened, so no ladder trace is advertised.
  EXPECT_EQ(R.Note.find("ladder:"), std::string::npos) << R.Note;
}

//===----------------------------------------------------------------------===//
// Cache: revalidated hits, tamper rejection, Unknown never cached.
//===----------------------------------------------------------------------===//

TEST(ServeCache, SafeHitIsRevalidatedCertificate) {
  Server Srv(fastOptions(1));
  JobResponse First = Srv.runSync(verifyReq("a", testprogs::Forward));
  ASSERT_EQ(First.Status, "ok");
  ASSERT_EQ(First.Verdict, 'S');
  EXPECT_EQ(First.CacheDisposition, "miss");

  JobRequest Again = verifyReq("b", testprogs::Forward);
  Again.WantCert = true;
  JobResponse Second = Srv.runSync(std::move(Again));
  ASSERT_EQ(Second.Status, "ok");
  EXPECT_EQ(Second.Verdict, 'S');
  EXPECT_EQ(Second.CacheDisposition, "hit");
  EXPECT_EQ(Second.EngineUsed, "cache");
  EXPECT_EQ(Second.Attempts, 0);
  EXPECT_NE(Second.Note.find("revalidated"), std::string::npos);
  EXPECT_FALSE(Second.Certificate.empty());
  EXPECT_EQ(First.FingerprintHex, Second.FingerprintHex);
}

TEST(ServeCache, UnsafeHitIsReplayedWitness) {
  Server Srv(fastOptions(1));
  JobResponse First = Srv.runSync(verifyReq("a", testprogs::ScalarBug));
  ASSERT_EQ(First.Verdict, 'U');
  JobResponse Second = Srv.runSync(verifyReq("b", testprogs::ScalarBug));
  EXPECT_EQ(Second.Verdict, 'U');
  EXPECT_EQ(Second.CacheDisposition, "hit");
  EXPECT_NE(Second.Note.find("witness replayed"), std::string::npos);
}

TEST(ServeCache, TamperedCertificateIsRejectedAndRecomputed) {
  Server Srv(fastOptions(1));
  ASSERT_EQ(Srv.runSync(verifyReq("a", testprogs::Forward)).Verdict, 'S');

  // Poison the entry: a certificate for the right fingerprint that does
  // not prove this program (weakened to claim nothing is reachable-free).
  Fingerprint FP = fingerprintOf(testprogs::Forward);
  CacheEntry Entry;
  ASSERT_TRUE(Srv.cache().lookup(FP, Entry));
  ASSERT_EQ(Entry.Verdict, 'S');
  CacheEntry Poisoned = Entry;
  Poisoned.Certificate = "pathinv-cert-v1\ngarbage that is not a map\n";
  ASSERT_TRUE(Srv.cache().insert(FP, Poisoned));

  JobResponse R = Srv.runSync(verifyReq("b", testprogs::Forward));
  ASSERT_EQ(R.Status, "ok");
  EXPECT_EQ(R.Verdict, 'S') << "poisoned cache changed a verdict";
  EXPECT_EQ(R.CacheDisposition, "revalidation-failed");
  EXPECT_NE(R.Note.find("cache entry rejected"), std::string::npos)
      << R.Note;
  // The recomputation republished a good entry: the next hit serves.
  JobResponse After = Srv.runSync(verifyReq("c", testprogs::Forward));
  EXPECT_EQ(After.CacheDisposition, "hit");
  EXPECT_EQ(After.Verdict, 'S');
}

TEST(ServeCache, TamperedWitnessIsRejectedAndRecomputed) {
  Server Srv(fastOptions(1));
  ASSERT_EQ(Srv.runSync(verifyReq("a", testprogs::ScalarBug)).Verdict, 'U');
  Fingerprint FP = fingerprintOf(testprogs::ScalarBug);
  CacheEntry Entry;
  ASSERT_TRUE(Srv.cache().lookup(FP, Entry));
  ASSERT_EQ(Entry.Verdict, 'U');
  // Corrupt the witness recipe: break the transition chain.
  CacheEntry Poisoned = Entry;
  ASSERT_FALSE(Poisoned.WitnessPath.empty());
  Poisoned.WitnessPath.back() = 9999;
  ASSERT_TRUE(Srv.cache().insert(FP, Poisoned));

  JobResponse R = Srv.runSync(verifyReq("b", testprogs::ScalarBug));
  EXPECT_EQ(R.Verdict, 'U') << "poisoned cache changed a verdict";
  EXPECT_EQ(R.CacheDisposition, "revalidation-failed");

  // Cross-program poisoning: serve Forward's entry under ScalarBug's
  // fingerprint (a simulated fingerprint collision). Revalidation against
  // the actual program must refuse it.
  JobResponse Safe = Srv.runSync(verifyReq("c", testprogs::Forward));
  ASSERT_EQ(Safe.Verdict, 'S');
  CacheEntry SafeEntry;
  ASSERT_TRUE(Srv.cache().lookup(fingerprintOf(testprogs::Forward),
                                 SafeEntry));
  ASSERT_TRUE(Srv.cache().insert(FP, SafeEntry));
  JobResponse Collided = Srv.runSync(verifyReq("d", testprogs::ScalarBug));
  EXPECT_EQ(Collided.Verdict, 'U') << "collided cache changed a verdict";
  EXPECT_EQ(Collided.CacheDisposition, "revalidation-failed");
}

TEST(ServeCache, UnknownIsNeverCachedAndBypassSkipsReads) {
  Server Srv(fastOptions(1));
  JobResponse Exhausted = Srv.runSync([&] {
    JobRequest Req = exhaustingReq("x", 1);
    Req.UseCache = true; // Even a cache-participating Unknown stays out.
    return Req;
  }());
  ASSERT_EQ(Exhausted.Verdict, '?');
  EXPECT_EQ(Srv.cache().size(), 0u);

  // Decide it, then prove bypass neither reads nor serves stale state.
  JobResponse Decided = Srv.runSync(verifyReq("y", testprogs::Partition));
  ASSERT_EQ(Decided.Verdict, 'S');
  JobRequest NoCache = verifyReq("z", testprogs::Partition);
  NoCache.UseCache = false;
  JobResponse Bypassed = Srv.runSync(std::move(NoCache));
  EXPECT_EQ(Bypassed.CacheDisposition, "bypass");
  EXPECT_GE(Bypassed.Attempts, 1) << "bypass must recompute";
}

//===----------------------------------------------------------------------===//
// Admission control and drain.
//===----------------------------------------------------------------------===//

TEST(ServeAdmission, FullQueueShedsWithMachineReadableRejection) {
  ServeOptions Opts = fastOptions(1);
  Opts.QueueCapacity = 1;
  // Real backoffs here: the blocker job must reliably occupy the worker
  // while the test probes the queue.
  Opts.BackoffBaseSeconds = 0.1;
  Opts.BackoffCapSeconds = 0.5;
  Server Srv(Opts);
  ResponseCollector Collector;

  Collector.expect(1);
  Srv.submit(exhaustingReq("blocker", 16), Collector.sink());
  // Wait until the blocker is actually in flight (dequeued).
  for (int I = 0; I < 2000 && Srv.stats().InFlight == 0; ++I)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_EQ(Srv.stats().InFlight, 1u);

  Collector.expect(1);
  Srv.submit(exhaustingReq("queued", 16), Collector.sink());

  // Queue full: the next three must shed immediately.
  for (int I = 0; I < 3; ++I) {
    JobResponse R =
        Srv.runSync(verifyReq("shed" + std::to_string(I),
                              testprogs::StraightSafe));
    EXPECT_EQ(R.Status, "overloaded");
    EXPECT_FALSE(R.Error.empty());
    EXPECT_EQ(R.Verdict, 0) << "nothing may run for a shed job";
  }
  EXPECT_EQ(Srv.stats().Shed, 3u);

  // Cancel the blockers; everyone still gets an answer.
  Srv.drain(/*CancelInFlight=*/true);
  ASSERT_TRUE(Collector.waitAll());
  EXPECT_EQ(Collector.take().size(), 2u);
}

TEST(ServeDrain, EveryJobAnsweredExactlyOnce) {
  ServeOptions Opts = fastOptions(1);
  Opts.BackoffBaseSeconds = 0.1;
  Opts.BackoffCapSeconds = 0.5;
  Opts.QueueCapacity = 64;
  Server Srv(Opts);
  ResponseCollector Collector;
  Collector.expect(6);
  Srv.submit(exhaustingReq("slow", 16), Collector.sink());
  for (int I = 0; I < 2000 && Srv.stats().InFlight == 0; ++I)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  for (int I = 0; I < 5; ++I)
    Srv.submit(verifyReq("q" + std::to_string(I), testprogs::StraightSafe),
               Collector.sink());
  Srv.drain(/*CancelInFlight=*/false);
  // Graceful drain: the in-flight ladder finishes (its backoffs cut
  // short), the queued five are rejected as "draining".
  ASSERT_TRUE(Collector.waitAll());
  auto Responses = Collector.take();
  ASSERT_EQ(Responses.size(), 6u);
  int Ok = 0, Draining = 0;
  for (const JobResponse &R : Responses) {
    if (R.Status == "ok")
      ++Ok;
    else if (R.Status == "draining") {
      ++Draining;
      EXPECT_FALSE(R.Error.empty());
    } else
      ADD_FAILURE() << R.Id << " unexpected status " << R.Status;
  }
  EXPECT_EQ(Ok, 1);
  EXPECT_EQ(Draining, 5);
  // Post-drain submissions are rejected machine-readably too.
  JobResponse Late = Srv.runSync(verifyReq("late", testprogs::StraightSafe));
  EXPECT_EQ(Late.Status, "draining");
}

TEST(ServeDrain, HardDrainCancelsThroughControllers) {
  ServeOptions Opts = fastOptions(1);
  Opts.BackoffBaseSeconds = 0.2;
  Opts.BackoffCapSeconds = 2.0;
  Server Srv(Opts);
  ResponseCollector Collector;
  Collector.expect(1);
  Srv.submit(exhaustingReq("victim", 16), Collector.sink());
  for (int I = 0; I < 2000 && Srv.stats().InFlight == 0; ++I)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  Srv.drain(/*CancelInFlight=*/true);
  ASSERT_TRUE(Collector.waitAll(60));
  auto Responses = Collector.take();
  ASSERT_EQ(Responses.size(), 1u);
  // The cancelled job is still *answered*: ok + Unknown, attributed
  // either to the cancellation or to whatever budget tripped first.
  EXPECT_EQ(Responses[0].Status, "ok");
  EXPECT_EQ(Responses[0].Verdict, '?');
  EXPECT_TRUE(reasonTaxonomy().count(Responses[0].UnknownReason))
      << Responses[0].UnknownReason;
}

//===----------------------------------------------------------------------===//
// Worker reuse after exhaustion, protocol-level errors, stats.
//===----------------------------------------------------------------------===//

TEST(ServeWorker, ReusedAfterExhaustionOnSameStack) {
  // One worker: the stack that just exhausted is the stack that must
  // decide the next jobs correctly.
  Server Srv(fastOptions(1));
  JobResponse Exhausted = Srv.runSync(exhaustingReq("x", 1));
  ASSERT_EQ(Exhausted.Verdict, '?');
  ASSERT_FALSE(Exhausted.UnknownReason.empty());
  JobResponse Safe = Srv.runSync(verifyReq("s", testprogs::StraightSafe));
  EXPECT_EQ(Safe.Verdict, 'S');
  JobResponse Unsafe = Srv.runSync(verifyReq("u", testprogs::ScalarBug));
  EXPECT_EQ(Unsafe.Verdict, 'U');
  // And the full partition proof still goes through after all of that.
  JobRequest Partition = verifyReq("p", testprogs::Partition);
  Partition.UseCache = false;
  EXPECT_EQ(Srv.runSync(std::move(Partition)).Verdict, 'S');
}

TEST(ServeProtocol, HostileLinesGetMachineReadableErrors) {
  Server Srv(fastOptions(1));
  const std::vector<std::string> Hostile = {
      "not json at all",
      "{\"op\":\"verify\"}",                       // missing program
      "{\"op\":\"conquer\"}",                      // unknown op
      "{\"id\":\"h\",\"op\":\"verify\",\"program\":\"proc f(n) { !!! }\"}",
      "{\"id\":\"b\",\"op\":\"verify\",\"program\":\"proc f(n) {}\","
      "\"budgets\":{\"quantum_flux\":3}}",         // unknown budget key
      "{\"id\":\"e\",\"op\":\"verify\",\"program\":\"proc f(n) {}\","
      "\"engine\":\"warp\"}",                      // unknown engine
      std::string(1 << 16, '{'),                   // nesting bomb
  };
  for (const std::string &Line : Hostile) {
    std::string Out;
    std::mutex Mu;
    std::condition_variable Cv;
    bool Got = false;
    Srv.submitLine(Line, [&](std::string Response) {
      std::lock_guard<std::mutex> Lock(Mu);
      Out = std::move(Response);
      Got = true;
      Cv.notify_all();
    });
    std::unique_lock<std::mutex> Lock(Mu);
    ASSERT_TRUE(Cv.wait_for(Lock, std::chrono::seconds(120),
                            [&] { return Got; }))
        << Line.substr(0, 40);
    EXPECT_NE(Out.find("\"status\":\"error\""), std::string::npos) << Out;
    EXPECT_NE(Out.find("\"error\":"), std::string::npos) << Out;
  }
  // The service is intact after all of that.
  EXPECT_EQ(Srv.runSync(verifyReq("ok", testprogs::StraightSafe)).Verdict,
            'S');
}

TEST(ServeProtocol, StatsReportTheLifecycle) {
  Server Srv(fastOptions(1));
  (void)Srv.runSync(verifyReq("a", testprogs::StraightSafe));
  (void)Srv.runSync(verifyReq("b", testprogs::StraightSafe)); // hit
  (void)Srv.runSync(exhaustingReq("c", 2));
  JobRequest StatsReq;
  StatsReq.Id = "st";
  StatsReq.Op = "stats";
  JobResponse R = Srv.runSync(std::move(StatsReq));
  ASSERT_EQ(R.Status, "ok");
  ASSERT_TRUE(R.HasExtra);
  std::string Line = R.toLine();
  for (const char *Key :
       {"\"submitted\":3", "\"completed\":3", "\"safe\":2", "\"unknown\":1",
        "\"cache_hits\":1", "\"retries\":1", "\"workers\":1,",
        "\"unknown_by_reason\":{"})
    EXPECT_NE(Line.find(Key), std::string::npos) << Key << "\n" << Line;
}

//===----------------------------------------------------------------------===//
// Socket transport: same contract over the wire.
//===----------------------------------------------------------------------===//

TEST(ServeTransport, SocketRoundTripAndDisconnectTolerance) {
  Server Srv(fastOptions(2));
  SocketListener Listener(Srv);
  std::string Error;
  std::string Path = testing::TempDir() + "serve_test.sock";
  ASSERT_TRUE(Listener.start(Path, Error)) << Error;

  auto Connect = [&]() -> int {
    int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(Fd, 0);
    sockaddr_un Addr{};
    Addr.sun_family = AF_UNIX;
    std::snprintf(Addr.sun_path, sizeof(Addr.sun_path), "%s",
                  Path.c_str());
    EXPECT_EQ(::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                        sizeof(Addr)),
              0);
    return Fd;
  };

  // Client 1: ping + verify, read both responses.
  int Fd = Connect();
  Json Req = Json::object();
  Req.set("id", Json::string("v1"));
  Req.set("op", Json::string("verify"));
  Req.set("program", Json::string(testprogs::ScalarBug));
  std::string Wire = "{\"id\":\"p1\",\"op\":\"ping\"}\n" + Req.write() + "\n";
  ASSERT_EQ(::send(Fd, Wire.data(), Wire.size(), 0),
            static_cast<ssize_t>(Wire.size()));
  std::string Got;
  char Chunk[4096];
  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::seconds(120);
  while (std::count(Got.begin(), Got.end(), '\n') < 2 &&
         std::chrono::steady_clock::now() < Deadline) {
    ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N <= 0)
      break;
    Got.append(Chunk, static_cast<size_t>(N));
  }
  EXPECT_NE(Got.find("\"id\":\"p1\",\"status\":\"ok\""), std::string::npos)
      << Got;
  EXPECT_NE(Got.find("\"verdict\":\"unsafe\""), std::string::npos) << Got;

  // Client 2 submits a job and disconnects before the answer: the
  // service must shrug (the response is dropped at the closed check).
  int Rude = Connect();
  ASSERT_EQ(::send(Rude, Wire.data(), Wire.size(), 0),
            static_cast<ssize_t>(Wire.size()));
  ::close(Rude);

  // Client 3 still gets served after the rude disconnect.
  std::string Wire3 = "{\"id\":\"p3\",\"op\":\"ping\"}\n";
  int Fd3 = Connect();
  ASSERT_EQ(::send(Fd3, Wire3.data(), Wire3.size(), 0),
            static_cast<ssize_t>(Wire3.size()));
  std::string Got3;
  while (Got3.find('\n') == std::string::npos &&
         std::chrono::steady_clock::now() < Deadline) {
    ssize_t N = ::recv(Fd3, Chunk, sizeof(Chunk), 0);
    if (N <= 0)
      break;
    Got3.append(Chunk, static_cast<size_t>(N));
  }
  EXPECT_NE(Got3.find("\"status\":\"ok\""), std::string::npos) << Got3;
  ::close(Fd);
  ::close(Fd3);
  Listener.stop();
}

//===----------------------------------------------------------------------===//
// Thread confinement: the two thread_local accounting mechanisms the
// worker pool leans on. These pin the documented contracts directly —
// the ServeFault suite below then exercises them behaviorally.
//===----------------------------------------------------------------------===//

TEST(ThreadConfinement, BigIntHeapAccountingIsPerThread) {
  // A worker's memory probe must see only its own job's heap values:
  // another thread allocating and freeing heap-encoded BigInts may not
  // move this thread's counter (see the contract in support/BigInt.h).
  uint64_t Before = bigIntHeapBytes();
  uint64_t OtherPeak = 0, OtherAfter = 0;
  std::thread Worker([&] {
    uint64_t Base = bigIntHeapBytes();
    {
      // ~40 decimal digits forces the heap representation.
      BigInt Big("123456789012345678901234567890123456789012");
      EXPECT_GT(bigIntHeapBytes(), Base);
      OtherPeak = bigIntHeapBytes() - Base;
    }
    OtherAfter = bigIntHeapBytes() - Base;
  });
  Worker.join();
  EXPECT_GT(OtherPeak, 0u);
  EXPECT_EQ(OtherAfter, 0u); // Balanced on its own thread...
  EXPECT_EQ(bigIntHeapBytes(), Before); // ...and invisible on this one.
}

#if defined(PATHINV_FAULT_INJECT)
TEST(ThreadConfinement, FaultArmingNeverLeaksAcrossThreads) {
  // arm() arms the CALLING thread only: a countdown armed here must not
  // fire — or tick — on another thread's site visits. This is what makes
  // per-job arming safe in a pool where jobs run concurrently.
  fault::arm(1);
  bool FiredElsewhere = false;
  std::thread Other([&] {
    // On an armed thread this first visit would fire. Here it must not,
    // and it must not consume the main thread's countdown either.
    FiredElsewhere = fault::shouldFail(fault::Site::ServeAdmission);
  });
  Other.join();
  EXPECT_FALSE(FiredElsewhere);
  EXPECT_TRUE(fault::shouldFail(fault::Site::ServeAdmission))
      << "main thread's countdown was consumed by another thread";
  fault::disarm();
}
#endif

//===----------------------------------------------------------------------===//
// Fault injection: degrade a worker / a job / a cache entry — never the
// process. (Compiled to no-ops without PATHINV_FAULT_INJECT.)
//===----------------------------------------------------------------------===//

#if defined(PATHINV_FAULT_INJECT)

TEST(ServeFault, WorkerSpawnFaultDegradesThePool) {
  fault::arm(1); // First spawn attempt fails (constructor thread).
  ServeOptions Opts = fastOptions(3);
  Server Srv(Opts);
  fault::disarm();
  EXPECT_EQ(Srv.workerCount(), 2u);
  EXPECT_EQ(Srv.stats().WorkerSpawnFaults, 1u);
  EXPECT_EQ(Srv.runSync(verifyReq("a", testprogs::StraightSafe)).Verdict,
            'S');
}

TEST(ServeFault, AllSpawnsFailingStillYieldsOneWorker) {
  fault::arm(1); // The only spawn attempt fails...
  Server Srv(fastOptions(1));
  fault::disarm();
  EXPECT_EQ(Srv.workerCount(), 1u) << "the containment floor";
  EXPECT_EQ(Srv.stats().WorkerSpawnFaults, 1u);
  EXPECT_EQ(Srv.runSync(verifyReq("a", testprogs::ScalarBug)).Verdict,
            'U');
}

TEST(ServeFault, AdmissionFaultShedsOneJobOnly) {
  Server Srv(fastOptions(1));
  fault::arm(1); // Next admission visit (this thread) fails.
  JobResponse Shed = Srv.runSync(verifyReq("a", testprogs::StraightSafe));
  fault::disarm();
  EXPECT_EQ(Shed.Status, "overloaded");
  EXPECT_NE(Shed.Error.find("injected"), std::string::npos) << Shed.Error;
  // The very next job sails through.
  EXPECT_EQ(Srv.runSync(verifyReq("b", testprogs::StraightSafe)).Verdict,
            'S');
  EXPECT_EQ(Srv.stats().AdmissionFaults, 1u);
}

TEST(ServeFault, CacheInsertFaultSkipsPublicationOnly) {
  VerdictCache Cache(8);
  CacheEntry Entry;
  Entry.Verdict = 'S';
  Entry.Certificate = "x";
  Fingerprint Key{1, 2};
  fault::arm(1);
  EXPECT_FALSE(Cache.insert(Key, Entry));
  fault::disarm();
  EXPECT_EQ(Cache.size(), 0u);
  EXPECT_TRUE(Cache.insert(Key, Entry));
  EXPECT_EQ(Cache.size(), 1u);
}

TEST(ServeFault, PerJobArmingDegradesOneJobNeverTheProcess) {
  // Sweep the countdown across the worker's site visits: whatever site
  // the fault lands on (solver checkpoint, arena growth, promotion,
  // cache insert), the job answers gracefully — correct verdict or
  // reasoned Unknown — and the next clean job is unaffected.
  Server Srv(fastOptions(1));
  for (uint64_t Arm = 1; Arm <= 24; ++Arm) {
    JobRequest Req = verifyReq("f" + std::to_string(Arm),
                               testprogs::StraightSafe);
    Req.FaultArm = Arm;
    Req.UseCache = false;
    JobResponse R = Srv.runSync(std::move(Req));
    ASSERT_EQ(R.Status, "ok") << "arm " << Arm << ": " << R.Error;
    if (R.Verdict == '?')
      EXPECT_TRUE(reasonTaxonomy().count(R.UnknownReason))
          << "arm " << Arm << " reason '" << R.UnknownReason << "'";
    else
      EXPECT_EQ(R.Verdict, 'S') << "arm " << Arm << " flipped a verdict";
  }
  JobRequest Clean = verifyReq("clean", testprogs::Partition);
  Clean.UseCache = false;
  EXPECT_EQ(Srv.runSync(std::move(Clean)).Verdict, 'S');
}

#endif // PATHINV_FAULT_INJECT

//===----------------------------------------------------------------------===//
// The adversarial sweep: fuzz-seeded jobs with constructed ground truth,
// hostile input, budget-exhausting jobs, concurrent clients.
//===----------------------------------------------------------------------===//

TEST(ServeAdversarial, MixedSweepNoWrongVerdictsEveryRequestAnswered) {
  ServeOptions Opts = fastOptions(2);
  Opts.QueueCapacity = 512; // Shedding is tested elsewhere; here every
                            // job must be *answered on the merits*.
  Server Srv(Opts);

  constexpr int FuzzJobs = 200;
  struct Truth {
    bool ExpectSafe;
  };
  std::vector<Truth> Truths(FuzzJobs);
  std::atomic<int> WrongVerdicts{0};
  std::atomic<int> MalformedResponses{0};
  ResponseCollector Collector;

  // Four concurrent clients with distinct adversarial personalities.
  std::mutex TruthMu;
  auto FuzzClient = [&](int First, int Count) {
    for (int I = First; I < First + Count; ++I) {
      fuzz::GeneratedProgram GP =
          fuzz::generateProgram(static_cast<uint64_t>(I + 1));
      {
        std::lock_guard<std::mutex> Lock(TruthMu);
        Truths[I].ExpectSafe = GP.ExpectSafe;
      }
      JobRequest Req = verifyReq("fuzz" + std::to_string(I), GP.Source);
      Req.UseCache = (I % 3 != 0); // Mix cached and bypassing jobs.
#if defined(PATHINV_FAULT_INJECT)
      if (I % 7 == 0)
        Req.FaultArm = static_cast<uint64_t>(1 + I % 40);
#endif
      Srv.submit(std::move(Req), Collector.sink());
    }
  };
  auto HostileClient = [&] {
    for (int I = 0; I < 25; ++I) {
      std::string Line =
          I % 2 ? "{\"id\":\"h" + std::to_string(I) +
                      "\",\"op\":\"verify\",\"program\":\"proc f(n) { "
                      "while (tr\""
                : "]]]garbage" + std::to_string(I);
      Srv.submitLine(Line, [&](std::string Out) {
        if (Out.find("\"status\":\"error\"") == std::string::npos ||
            Out.find("\"error\":") == std::string::npos)
          ++MalformedResponses;
        Collector.sink()(JobResponse{}); // Count it as answered.
      });
    }
  };
  auto ExhaustClient = [&] {
    for (int I = 0; I < 15; ++I)
      Srv.submit(exhaustingReq("ex" + std::to_string(I), 2),
                 Collector.sink());
  };

  Collector.expect(FuzzJobs + 25 + 15);
  std::vector<std::thread> Clients;
  Clients.emplace_back(FuzzClient, 0, FuzzJobs / 2);
  Clients.emplace_back(FuzzClient, FuzzJobs / 2, FuzzJobs / 2);
  Clients.emplace_back(HostileClient);
  Clients.emplace_back(ExhaustClient);
  for (auto &C : Clients)
    C.join();
  ASSERT_TRUE(Collector.waitAll(600)) << "service wedged mid-sweep";

  int Answered = 0;
  for (const JobResponse &R : Collector.take()) {
    ++Answered;
    if (R.Id.compare(0, 4, "fuzz") == 0) {
      ASSERT_EQ(R.Status, "ok") << R.Id << ": " << R.Error;
      int Index = std::stoi(R.Id.substr(4));
      bool ExpectSafe;
      {
        std::lock_guard<std::mutex> Lock(TruthMu);
        ExpectSafe = Truths[Index].ExpectSafe;
      }
      // Zero wrong verdicts: Unknown is acceptable (exhaustion is never
      // a verdict), the opposite definitive verdict is a bug.
      if ((R.Verdict == 'S' && !ExpectSafe) ||
          (R.Verdict == 'U' && ExpectSafe)) {
        ++WrongVerdicts;
        ADD_FAILURE() << R.Id << " verdict " << R.Verdict
                      << " contradicts constructed ground truth; note: "
                      << R.Note;
      }
      if (R.Verdict == '?') {
        EXPECT_TRUE(R.UnknownReason.empty() ||
                    reasonTaxonomy().count(R.UnknownReason))
            << R.Id << ": " << R.UnknownReason;
      }
    } else if (R.Id.compare(0, 2, "ex") == 0) {
      EXPECT_EQ(R.Status, "ok") << R.Id;
      EXPECT_TRUE(R.Verdict == '?' || R.Verdict == 'S') << R.Id;
    }
  }
  EXPECT_EQ(Answered, FuzzJobs + 25 + 15);
  EXPECT_EQ(WrongVerdicts.load(), 0);
  EXPECT_EQ(MalformedResponses.load(), 0);
  // And the service is still healthy enough to answer for itself.
  JobRequest StatsReq;
  StatsReq.Op = "stats";
  EXPECT_EQ(Srv.runSync(std::move(StatsReq)).Status, "ok");
}
