//===- tests/term_core_test.cpp - Arena/interning term-core tests ---------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Invariants of the arena-interned term core: uniquing across arena
/// growth, symbol-interning round trips, rewrite-cache correctness under
/// nested substitution, memoized traversals, and deterministic term ids
/// across identical runs.
///
//===----------------------------------------------------------------------===//

#include "logic/LinearExpr.h"
#include "logic/Term.h"
#include "logic/TermPrinter.h"
#include "logic/TermRewrite.h"

#include <gtest/gtest.h>

using namespace pathinv;

namespace {

TEST(TermCoreTest, UniquingSurvivesArenaGrowth) {
  // Enough distinct terms to force many arena chunks, then re-create
  // everything and demand pointer equality (structural equality ==
  // identity is the hash-consing contract).
  TermManager TM;
  auto build = [&TM]() {
    std::vector<const Term *> Out;
    const Term *Acc = TM.mkIntConst(0);
    for (int I = 0; I < 20000; ++I) {
      const Term *V = TM.mkVar("v" + std::to_string(I % 257), Sort::Int);
      Acc = TM.mkAdd(TM.mkMul(TM.mkIntConst(I % 13 + 1), V),
                     TM.mkIntConst(I));
      Out.push_back(TM.mkLe(Acc, V));
    }
    return Out;
  };
  std::vector<const Term *> First = build();
  size_t Terms = TM.numTerms();
  std::vector<const Term *> Second = build();
  EXPECT_EQ(TM.numTerms(), Terms) << "second build interned new terms";
  ASSERT_EQ(First.size(), Second.size());
  for (size_t I = 0; I < First.size(); ++I)
    EXPECT_EQ(First[I], Second[I]);
  EXPECT_GT(TM.arenaBytes(), size_t(1) << 16)
      << "test did not actually grow the arena past one chunk";
}

TEST(TermCoreTest, SymbolInterningRoundTrip) {
  TermManager TM;
  const Term *X = TM.mkVar("x", Sort::Int);
  const Term *XArr = TM.mkVar("x", Sort::ArrayIntInt);
  const Term *Y = TM.mkVar("y", Sort::Int);
  EXPECT_EQ(X->name(), "x");
  EXPECT_EQ(Y->name(), "y");
  // Same text, different sort: distinct terms sharing one symbol id.
  EXPECT_NE(X, XArr);
  EXPECT_EQ(X->symbol(), XArr->symbol());
  EXPECT_NE(X->symbol(), Y->symbol());
  // Function applications intern through the same table.
  const Term *F = TM.mkApply("x", {Y}, Sort::Int);
  EXPECT_EQ(F->symbol(), X->symbol());
  EXPECT_EQ(F->name(), "x");
  // Ids round-trip through the table.
  EXPECT_EQ(TM.internSymbol("x"), X->symbol());
  EXPECT_EQ(TM.symbolText(Y->symbol()), "y");
  EXPECT_GE(TM.numSymbols(), 2u);
}

TEST(TermCoreTest, StructuralHashAgreesWithIdentity) {
  TermManager TM;
  const Term *A = TM.mkAdd(TM.mkVar("p", Sort::Int), TM.mkIntConst(3));
  const Term *B = TM.mkAdd(TM.mkVar("p", Sort::Int), TM.mkIntConst(3));
  EXPECT_EQ(A, B);
  EXPECT_EQ(A->structuralHash(), B->structuralHash());
}

TEST(TermCoreTest, OperandRangeMatchesOperandAccessors) {
  TermManager TM;
  const Term *X = TM.mkVar("x", Sort::Int);
  const Term *Y = TM.mkVar("y", Sort::Int);
  const Term *Z = TM.mkVar("z", Sort::Int);
  const Term *Sum = TM.mkAdd({X, Y, Z});
  ASSERT_EQ(Sum->numOperands(), 3u);
  size_t I = 0;
  for (const Term *Op : Sum->operands())
    EXPECT_EQ(Op, Sum->operand(I++));
  EXPECT_EQ(I, 3u);
  EXPECT_EQ(Sum->operands().front(), Sum->operand(0));
  EXPECT_EQ(Sum->operands().back(), Sum->operand(2));
}

TEST(TermCoreTest, RewriteCacheNestedSubstitution) {
  TermManager TM;
  const Term *X = TM.mkVar("x", Sort::Int);
  const Term *Y = TM.mkVar("y", Sort::Int);
  const Term *K = TM.mkVar("k", Sort::Int);
  // Shared subterm under a shadowing quantifier: the outer substitution
  // must not leak through the bound occurrence of k, while the same
  // subterm outside the quantifier is rewritten (this is where a naive
  // global rewrite cache would go wrong).
  const Term *Shared = TM.mkLe(K, X);
  const Term *F = TM.mkAnd(Shared, TM.mkForall(K, Shared));
  TermMap Subst;
  Subst[K] = TM.mkIntConst(7);
  Subst[X] = Y;
  const Term *R = substitute(TM, F, Subst);
  const Term *Expected = TM.mkAnd(TM.mkLe(TM.mkIntConst(7), Y),
                                  TM.mkForall(K, TM.mkLe(K, Y)));
  EXPECT_EQ(R, Expected) << printTerm(R);

  // Substituting twice through the cache is idempotent in structure.
  EXPECT_EQ(substitute(TM, F, Subst), R);

  // Nested chains: (x -> y) then (y -> x) round-trips.
  TermMap Fwd, Bwd;
  Fwd[X] = Y;
  Bwd[Y] = X;
  EXPECT_EQ(substitute(TM, substitute(TM, F, Fwd), Bwd), F);
}

TEST(TermCoreTest, FreeVarMemoConsistency) {
  TermManager TM;
  const Term *X = TM.mkVar("x", Sort::Int);
  const Term *A = TM.mkVar("a", Sort::ArrayIntInt);
  const Term *K = TM.mkVar("k", Sort::Int);
  const Term *Body = TM.mkEq(TM.mkSelect(A, K), X);
  const Term *Q = TM.mkForall(K, Body);
  // Same subterm free and bound in one formula.
  const Term *F = TM.mkAnd(TM.mkLe(K, X), Q);

  TermSet Vars;
  collectFreeVars(F, Vars);
  EXPECT_TRUE(Vars.count(X));
  EXPECT_TRUE(Vars.count(A));
  EXPECT_TRUE(Vars.count(K)) << "outer free occurrence of k lost";

  TermSet QVars;
  collectFreeVars(Q, QVars);
  EXPECT_FALSE(QVars.count(K)) << "bound variable leaked";
  EXPECT_TRUE(QVars.count(A));

  // Second query hits the memo and must agree.
  TermSet Again;
  collectFreeVars(F, Again);
  EXPECT_EQ(Vars.size(), Again.size());
}

TEST(TermCoreTest, ContainsFlagsPropagate) {
  TermManager TM;
  const Term *A = TM.mkVar("a", Sort::ArrayIntInt);
  const Term *I = TM.mkVar("i", Sort::Int);
  const Term *K = TM.mkVar("k", Sort::Int);
  const Term *Stored = TM.mkStore(A, I, TM.mkIntConst(0));
  const Term *WithStore = TM.mkEq(TM.mkSelect(Stored, I), TM.mkIntConst(0));
  EXPECT_TRUE(containsStore(WithStore));
  EXPECT_FALSE(containsQuantifier(WithStore));
  const Term *Q = TM.mkForall(K, TM.mkLe(K, I));
  EXPECT_TRUE(containsQuantifier(TM.mkAnd(Q, WithStore)));
  EXPECT_TRUE(containsStore(TM.mkAnd(Q, WithStore)));
  EXPECT_FALSE(containsStore(Q));
}

TEST(TermCoreTest, DecomposeAtomMemoStable) {
  TermManager TM;
  const Term *X = TM.mkVar("x", Sort::Int);
  const Term *Y = TM.mkVar("y", Sort::Int);
  const Term *Atom =
      TM.mkLe(TM.mkAdd(TM.mkMul(TM.mkIntConst(2), X), Y), TM.mkIntConst(5));
  auto First = decomposeAtom(Atom);
  ASSERT_TRUE(First.has_value());
  auto Second = decomposeAtom(Atom); // Memo hit.
  ASSERT_TRUE(Second.has_value());
  EXPECT_EQ(First->Rel, Second->Rel);
  EXPECT_TRUE(First->Expr == Second->Expr);
  EXPECT_EQ(First->Expr.coefficientOf(X), Rational(2));
  // Non-atoms are rejected both before and after the memo warms up.
  const Term *Conj = TM.mkAnd(Atom, TM.mkLe(X, Y));
  EXPECT_FALSE(decomposeAtom(Conj).has_value());
  EXPECT_FALSE(decomposeAtom(Conj).has_value());
}

/// Builds a fixed workload and returns the (id, rendering) trace.
std::vector<std::pair<uint32_t, std::string>> idTrace() {
  TermManager TM;
  std::vector<std::pair<uint32_t, std::string>> Trace;
  std::vector<const Term *> Vars;
  for (int I = 0; I < 8; ++I)
    Vars.push_back(TM.mkVar("w" + std::to_string(I), Sort::Int));
  const Term *Acc = TM.mkTrue();
  for (int R = 0; R < 50; ++R) {
    const Term *Sum = TM.mkAdd(
        {TM.mkMul(TM.mkIntConst(R % 5 + 1), Vars[R % 8]), Vars[(R + 3) % 8],
         TM.mkIntConst(R)});
    const Term *Atom = TM.mkLe(Sum, Vars[(R + 1) % 8]);
    Acc = TM.mkAnd(Acc, R % 2 ? Atom : TM.mkNot(Atom));
    Trace.emplace_back(Acc->id(), printTerm(Acc));
  }
  return Trace;
}

TEST(TermCoreTest, DeterministicIdsAcrossRuns) {
  // Two identical runs in fresh managers must assign identical creation
  // indices (the ids feed TermIdLess everywhere — nondeterminism here
  // would poison every ordered container downstream).
  auto First = idTrace();
  auto Second = idTrace();
  ASSERT_EQ(First.size(), Second.size());
  for (size_t I = 0; I < First.size(); ++I) {
    EXPECT_EQ(First[I].first, Second[I].first) << "id diverged at step " << I;
    EXPECT_EQ(First[I].second, Second[I].second);
  }
}

TEST(TermCoreTest, ManagerIntrospection) {
  TermManager TM;
  size_t Before = TM.numTerms();
  const Term *X = TM.mkVar("fresh_x", Sort::Int);
  EXPECT_EQ(TM.numTerms(), Before + 1);
  EXPECT_EQ(TM.termOfId(X->id()), X);
  EXPECT_EQ(&X->manager(), &TM);
}

} // namespace
