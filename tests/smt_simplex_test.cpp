//===- tests/smt_simplex_test.cpp - Simplex unit/property tests -----------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/Simplex.h"

#include <gtest/gtest.h>

#include <random>

using namespace pathinv;

namespace {

TEST(SimplexTest, TrivialFeasible) {
  Simplex S;
  int X = S.addVar();
  S.addBound(X, SimplexRel::Ge, Rational(1), 0);
  S.addBound(X, SimplexRel::Le, Rational(3), 1);
  ASSERT_EQ(S.check(), Simplex::Result::Sat);
  Rational V = S.modelValue(X);
  EXPECT_GE(V, Rational(1));
  EXPECT_LE(V, Rational(3));
}

TEST(SimplexTest, DirectBoundConflict) {
  Simplex S;
  int X = S.addVar();
  S.addBound(X, SimplexRel::Ge, Rational(5), 7);
  S.addBound(X, SimplexRel::Le, Rational(3), 9);
  EXPECT_EQ(S.check(), Simplex::Result::Unsat);
  auto Core = S.unsatCore();
  EXPECT_EQ(Core.size(), 2u);
  EXPECT_TRUE((Core[0] == 7 && Core[1] == 9) ||
              (Core[0] == 9 && Core[1] == 7));
}

TEST(SimplexTest, StrictBoundsSeparate) {
  // x < 1 && x > 0 is satisfiable over rationals.
  Simplex S;
  int X = S.addVar();
  S.addBound(X, SimplexRel::Lt, Rational(1), 0);
  S.addBound(X, SimplexRel::Gt, Rational(0), 1);
  ASSERT_EQ(S.check(), Simplex::Result::Sat);
  Rational V = S.modelValue(X);
  EXPECT_LT(V, Rational(1));
  EXPECT_GT(V, Rational(0));
}

TEST(SimplexTest, StrictConflict) {
  // x < 1 && x > 1 is unsat; so is x < 1 && x >= 1.
  {
    Simplex S;
    int X = S.addVar();
    S.addBound(X, SimplexRel::Lt, Rational(1), 0);
    S.addBound(X, SimplexRel::Gt, Rational(1), 1);
    EXPECT_EQ(S.check(), Simplex::Result::Unsat);
  }
  {
    Simplex S;
    int X = S.addVar();
    S.addBound(X, SimplexRel::Lt, Rational(1), 0);
    S.addBound(X, SimplexRel::Ge, Rational(1), 1);
    EXPECT_EQ(S.check(), Simplex::Result::Unsat);
  }
}

TEST(SimplexTest, StrictBoundaryPointExcluded) {
  // x + y <= 2 && x >= 1 && y >= 1 && x < 1 is unsat (x pinned to 1).
  Simplex S;
  int X = S.addVar();
  int Y = S.addVar();
  S.addConstraint({{X, Rational(1)}, {Y, Rational(1)}}, SimplexRel::Le,
                  Rational(2), 0);
  S.addBound(X, SimplexRel::Ge, Rational(1), 1);
  S.addBound(Y, SimplexRel::Ge, Rational(1), 2);
  ASSERT_EQ(S.check(), Simplex::Result::Sat);
  Simplex S2;
  X = S2.addVar();
  Y = S2.addVar();
  S2.addConstraint({{X, Rational(1)}, {Y, Rational(1)}}, SimplexRel::Le,
                   Rational(2), 0);
  S2.addBound(X, SimplexRel::Gt, Rational(1), 1);
  S2.addBound(Y, SimplexRel::Ge, Rational(1), 2);
  EXPECT_EQ(S2.check(), Simplex::Result::Unsat);
}

TEST(SimplexTest, EqualityChainPropagation) {
  // x = y && y = z && x >= 3 && z <= 2 is unsat.
  Simplex S;
  int X = S.addVar(), Y = S.addVar(), Z = S.addVar();
  S.addConstraint({{X, Rational(1)}, {Y, Rational(-1)}}, SimplexRel::Eq,
                  Rational(0), 0);
  S.addConstraint({{Y, Rational(1)}, {Z, Rational(-1)}}, SimplexRel::Eq,
                  Rational(0), 1);
  S.addBound(X, SimplexRel::Ge, Rational(3), 2);
  S.addBound(Z, SimplexRel::Le, Rational(2), 3);
  EXPECT_EQ(S.check(), Simplex::Result::Unsat);
}

TEST(SimplexTest, PaperPathFormulaRationalRelaxation) {
  // The FORWARD counterexample path formula of Section 2.1:
  //   n0 >= 0 && i1 = 0 && a1 = 0 && b1 = 0 && i1 < n0 &&
  //   a2 = a1 + 1 && b2 = b1 + 2 && i2 = i1 + 1 && i2 >= n0 &&
  //   a2 + b2 != 3 n0
  // Over the *rationals* the '>' branch has a model (n0 = 1/2); only the
  // '<' branch is rationally infeasible. The integer-level infeasibility
  // is established by branch-and-bound in the theory solver (see
  // SmtTest.PaperPathFormulaIntegerUnsat).
  auto build = [](bool GreaterBranch) {
    Simplex S;
    int N0 = S.addVar(), I1 = S.addVar(), A1 = S.addVar(), B1 = S.addVar();
    int A2 = S.addVar(), B2 = S.addVar(), I2 = S.addVar();
    S.addBound(N0, SimplexRel::Ge, Rational(0), 0);
    S.addBound(I1, SimplexRel::Eq, Rational(0), 1);
    S.addBound(A1, SimplexRel::Eq, Rational(0), 2);
    S.addBound(B1, SimplexRel::Eq, Rational(0), 3);
    S.addConstraint({{I1, Rational(1)}, {N0, Rational(-1)}}, SimplexRel::Lt,
                    Rational(0), 4);
    S.addConstraint({{A2, Rational(1)}, {A1, Rational(-1)}}, SimplexRel::Eq,
                    Rational(1), 5);
    S.addConstraint({{B2, Rational(1)}, {B1, Rational(-1)}}, SimplexRel::Eq,
                    Rational(2), 6);
    S.addConstraint({{I2, Rational(1)}, {I1, Rational(-1)}}, SimplexRel::Eq,
                    Rational(1), 7);
    S.addConstraint({{I2, Rational(1)}, {N0, Rational(-1)}}, SimplexRel::Ge,
                    Rational(0), 8);
    S.addConstraint({{A2, Rational(1)}, {B2, Rational(1)},
                     {N0, Rational(-3)}},
                    GreaterBranch ? SimplexRel::Gt : SimplexRel::Lt,
                    Rational(0), 9);
    return S.check();
  };
  EXPECT_EQ(build(true), Simplex::Result::Sat);
  EXPECT_EQ(build(false), Simplex::Result::Unsat);
}

TEST(SimplexTest, UnboundedDirectionIsFeasible) {
  Simplex S;
  int X = S.addVar(), Y = S.addVar();
  // x - y >= 10 with no other bounds: feasible.
  S.addConstraint({{X, Rational(1)}, {Y, Rational(-1)}}, SimplexRel::Ge,
                  Rational(10), 0);
  ASSERT_EQ(S.check(), Simplex::Result::Sat);
  EXPECT_GE(S.modelValue(X) - S.modelValue(Y), Rational(10));
}

TEST(SimplexTest, RepeatedVariableAccumulates) {
  // x + x + x <= 3 is x <= 1.
  Simplex S;
  int X = S.addVar();
  S.addConstraint({{X, Rational(1)}, {X, Rational(1)}, {X, Rational(1)}},
                  SimplexRel::Le, Rational(3), 0);
  S.addBound(X, SimplexRel::Gt, Rational(1), 1);
  EXPECT_EQ(S.check(), Simplex::Result::Unsat);
}

TEST(SimplexTest, GroundConflict) {
  Simplex S;
  (void)S.addVar();
  // 0 <= -1 as a constraint with no variables.
  S.addConstraint({}, SimplexRel::Le, Rational(-1), 42);
  EXPECT_EQ(S.check(), Simplex::Result::Unsat);
  ASSERT_EQ(S.unsatCore().size(), 1u);
  EXPECT_EQ(S.unsatCore()[0], 42);
}

TEST(SimplexTest, IncrementalAddAfterCheck) {
  Simplex S;
  int X = S.addVar(), Y = S.addVar();
  S.addConstraint({{X, Rational(1)}, {Y, Rational(1)}}, SimplexRel::Le,
                  Rational(4), 0);
  ASSERT_EQ(S.check(), Simplex::Result::Sat);
  S.addBound(X, SimplexRel::Ge, Rational(3), 1);
  ASSERT_EQ(S.check(), Simplex::Result::Sat);
  S.addBound(Y, SimplexRel::Ge, Rational(2), 2);
  EXPECT_EQ(S.check(), Simplex::Result::Unsat);
}

TEST(SimplexTest, NegativeCoefficientBoundFlip) {
  // -2x <= -6  means x >= 3.
  Simplex S;
  int X = S.addVar();
  S.addConstraint({{X, Rational(-2)}}, SimplexRel::Le, Rational(-6), 0);
  S.addBound(X, SimplexRel::Lt, Rational(3), 1);
  EXPECT_EQ(S.check(), Simplex::Result::Unsat);
}

// Property test: on random constraint systems, SAT models must satisfy
// every constraint, and UNSAT cores must be infeasible when re-solved
// alone. This is a self-certifying check that needs no external oracle.
class SimplexRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(SimplexRandomTest, ModelsAndCoresAreCertified) {
  std::mt19937_64 Rng(GetParam());
  for (int Round = 0; Round < 60; ++Round) {
    int NumVars = 2 + static_cast<int>(Rng() % 4);
    int NumCons = 1 + static_cast<int>(Rng() % 8);
    struct Con {
      std::vector<std::pair<int, Rational>> Coeffs;
      SimplexRel Rel;
      Rational Rhs;
    };
    std::vector<Con> Cons;
    Simplex S;
    for (int I = 0; I < NumVars; ++I)
      S.addVar();
    for (int C = 0; C < NumCons; ++C) {
      Con Constraint;
      for (int V = 0; V < NumVars; ++V) {
        int64_t Coeff = static_cast<int64_t>(Rng() % 7) - 3;
        if (Coeff != 0)
          Constraint.Coeffs.emplace_back(V, Rational(Coeff));
      }
      Constraint.Rel = static_cast<SimplexRel>(Rng() % 5);
      Constraint.Rhs = Rational(static_cast<int64_t>(Rng() % 21) - 10);
      S.addConstraint(Constraint.Coeffs, Constraint.Rel, Constraint.Rhs, C);
      Cons.push_back(std::move(Constraint));
    }
    if (S.check() == Simplex::Result::Sat) {
      std::vector<Rational> M = S.model();
      for (const Con &C : Cons) {
        Rational Lhs;
        for (const auto &[V, Coeff] : C.Coeffs)
          Lhs += Coeff * M[V];
        switch (C.Rel) {
        case SimplexRel::Le:
          EXPECT_LE(Lhs, C.Rhs);
          break;
        case SimplexRel::Lt:
          EXPECT_LT(Lhs, C.Rhs);
          break;
        case SimplexRel::Ge:
          EXPECT_GE(Lhs, C.Rhs);
          break;
        case SimplexRel::Gt:
          EXPECT_GT(Lhs, C.Rhs);
          break;
        case SimplexRel::Eq:
          EXPECT_EQ(Lhs, C.Rhs);
          break;
        }
      }
    } else {
      // The reported core alone must be infeasible.
      std::vector<int> Core = S.unsatCore();
      Simplex S2;
      for (int I = 0; I < NumVars; ++I)
        S2.addVar();
      for (int Tag : Core) {
        ASSERT_GE(Tag, 0);
        ASSERT_LT(Tag, static_cast<int>(Cons.size()));
        S2.addConstraint(Cons[Tag].Coeffs, Cons[Tag].Rel, Cons[Tag].Rhs,
                         Tag);
      }
      EXPECT_EQ(S2.check(), Simplex::Result::Unsat)
          << "unsat core is not itself unsat";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandomTest,
                         ::testing::Range(1, 11));

// Regression coverage for push/pop interacting with the accumulate-API
// pivoting: a scoped pivot storm — batches of dense constraints asserted
// inside scopes, solved (forcing many pivots through addMul), then popped
// — after which every batch verdict is differentially re-checked against
// a from-scratch solve, and the base system must still answer exactly as
// it did before the storm.
TEST(SimplexScopedPivotStormTest, PopRestoresAndMatchesFreshSolves) {
  std::mt19937_64 Rng(0xdeadbeef);
  constexpr int NumVars = 6;

  struct Con {
    std::vector<std::pair<int, Rational>> Coeffs;
    SimplexRel Rel;
    Rational Rhs;
  };
  auto randomBatch = [&Rng](int Tag0) {
    std::vector<std::pair<Con, int>> Batch;
    int NumCons = 2 + static_cast<int>(Rng() % 5);
    for (int C = 0; C < NumCons; ++C) {
      Con Constraint;
      for (int V = 0; V < NumVars; ++V) {
        // Fractional coefficients force rational (not integer) pivots.
        int64_t Num = static_cast<int64_t>(Rng() % 9) - 4;
        int64_t Den = 1 + static_cast<int64_t>(Rng() % 3);
        if (Num != 0)
          Constraint.Coeffs.emplace_back(V, Rational::fraction(Num, Den));
      }
      Constraint.Rel = static_cast<SimplexRel>(Rng() % 5);
      Constraint.Rhs = Rational(static_cast<int64_t>(Rng() % 13) - 6);
      Batch.emplace_back(std::move(Constraint), Tag0 + C);
    }
    return Batch;
  };

  // Shared base system (kept satisfiable): box bounds plus one dense row.
  Simplex S;
  std::vector<Con> BaseCons;
  for (int V = 0; V < NumVars; ++V)
    S.addVar();
  for (int V = 0; V < NumVars; ++V) {
    BaseCons.push_back({{{V, Rational(1)}}, SimplexRel::Ge, Rational(-20)});
    BaseCons.push_back({{{V, Rational(1)}}, SimplexRel::Le, Rational(20)});
  }
  {
    Con Dense;
    for (int V = 0; V < NumVars; ++V)
      Dense.Coeffs.emplace_back(V, Rational::fraction(V + 1, 2));
    Dense.Rel = SimplexRel::Le;
    Dense.Rhs = Rational(15);
    BaseCons.push_back(std::move(Dense));
  }
  for (size_t I = 0; I < BaseCons.size(); ++I)
    S.addConstraint(BaseCons[I].Coeffs, BaseCons[I].Rel, BaseCons[I].Rhs,
                    static_cast<int>(I));
  ASSERT_EQ(S.check(), Simplex::Result::Sat);
  std::vector<Rational> BaseModel = S.model();

  // The storm: scoped batches, recording each verdict.
  std::vector<std::pair<std::vector<std::pair<Con, int>>, Simplex::Result>>
      Recorded;
  for (int Round = 0; Round < 120; ++Round) {
    auto Batch = randomBatch(1000 + Round * 16);
    S.push();
    for (const auto &[C, Tag] : Batch)
      S.addConstraint(C.Coeffs, C.Rel, C.Rhs, Tag);
    Simplex::Result R = S.check();
    if (R == Simplex::Result::Sat) {
      // The scoped model must satisfy base and batch alike.
      std::vector<Rational> M = S.model();
      auto holds = [&M](const Con &C) {
        Rational Lhs;
        for (const auto &[V, Coeff] : C.Coeffs)
          Lhs.addMul(Coeff, M[V]);
        switch (C.Rel) {
        case SimplexRel::Le:
          return Lhs <= C.Rhs;
        case SimplexRel::Lt:
          return Lhs < C.Rhs;
        case SimplexRel::Ge:
          return Lhs >= C.Rhs;
        case SimplexRel::Gt:
          return Lhs > C.Rhs;
        case SimplexRel::Eq:
          return Lhs == C.Rhs;
        }
        return false;
      };
      for (const Con &C : BaseCons)
        ASSERT_TRUE(holds(C)) << "scoped model violates the base, round "
                              << Round;
      for (const auto &[C, Tag] : Batch)
        ASSERT_TRUE(holds(C)) << "scoped model violates batch, round "
                              << Round;
    }
    S.pop();
    Recorded.emplace_back(std::move(Batch), R);

    // After the pop, the base must still be satisfiable and the model
    // must still satisfy every base constraint.
    ASSERT_EQ(S.check(), Simplex::Result::Sat) << "round " << Round;
  }

  // Differential re-check: every recorded verdict must match a fresh
  // solver fed base + batch from scratch.
  for (size_t I = 0; I < Recorded.size(); ++I) {
    const auto &[Batch, Expected] = Recorded[I];
    Simplex Fresh;
    for (int V = 0; V < NumVars; ++V)
      Fresh.addVar();
    for (size_t J = 0; J < BaseCons.size(); ++J)
      Fresh.addConstraint(BaseCons[J].Coeffs, BaseCons[J].Rel,
                          BaseCons[J].Rhs, static_cast<int>(J));
    for (const auto &[C, Tag] : Batch)
      Fresh.addConstraint(C.Coeffs, C.Rel, C.Rhs, Tag);
    EXPECT_EQ(Fresh.check(), Expected)
        << "scoped verdict diverges from fresh solve for batch " << I;
  }

  // And the storm-surviving tableau still answers base queries exactly.
  // (Popped scopes leave dead slack columns behind, so the model can have
  // grown — but the original columns must still satisfy the base.)
  ASSERT_EQ(S.check(), Simplex::Result::Sat);
  std::vector<Rational> After = S.model();
  ASSERT_GE(After.size(), BaseModel.size());
  for (const Con &C : BaseCons) {
    Rational Lhs;
    for (const auto &[V, Coeff] : C.Coeffs)
      Lhs.addMul(Coeff, After[V]);
    switch (C.Rel) {
    case SimplexRel::Le:
      EXPECT_LE(Lhs, C.Rhs);
      break;
    case SimplexRel::Lt:
      EXPECT_LT(Lhs, C.Rhs);
      break;
    case SimplexRel::Ge:
      EXPECT_GE(Lhs, C.Rhs);
      break;
    case SimplexRel::Gt:
      EXPECT_GT(Lhs, C.Rhs);
      break;
    case SimplexRel::Eq:
      EXPECT_EQ(Lhs, C.Rhs);
      break;
    }
  }
}

} // namespace
