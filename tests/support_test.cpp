//===- tests/support_test.cpp - BigInt/Rational unit tests ----------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/BigInt.h"
#include "support/DeltaRational.h"
#include "support/Rational.h"

#include <gtest/gtest.h>

#include <random>

using namespace pathinv;

namespace {

TEST(BigIntTest, ZeroBasics) {
  BigInt Zero;
  EXPECT_TRUE(Zero.isZero());
  EXPECT_EQ(Zero.sign(), 0);
  EXPECT_EQ(Zero.toString(), "0");
  EXPECT_EQ(Zero + Zero, Zero);
  EXPECT_EQ(Zero * BigInt(42), Zero);
  EXPECT_EQ((-Zero), Zero);
}

TEST(BigIntTest, Int64RoundTrip) {
  for (int64_t V : {int64_t(0), int64_t(1), int64_t(-1), int64_t(42),
                    int64_t(-1234567890123LL), INT64_MAX, INT64_MIN}) {
    BigInt B(V);
    EXPECT_TRUE(B.fitsInt64()) << V;
    EXPECT_EQ(B.toInt64(), V);
    EXPECT_EQ(B.toString(), std::to_string(V));
  }
}

TEST(BigIntTest, StringRoundTrip) {
  const char *Cases[] = {"0", "1", "-1", "999999999999999999999999999999",
                         "-123456789012345678901234567890123456789"};
  for (const char *Text : Cases) {
    BigInt B{std::string_view(Text)};
    EXPECT_EQ(B.toString(), Text);
  }
}

TEST(BigIntTest, RejectsMalformedStrings) {
  BigInt Out;
  EXPECT_FALSE(BigInt::fromString("", Out));
  EXPECT_FALSE(BigInt::fromString("-", Out));
  EXPECT_FALSE(BigInt::fromString("12a", Out));
  EXPECT_FALSE(BigInt::fromString("1.5", Out));
  EXPECT_TRUE(BigInt::fromString("+17", Out));
  EXPECT_EQ(Out.toInt64(), 17);
}

TEST(BigIntTest, LargeMultiplication) {
  BigInt A(std::string_view("123456789012345678901234567890"));
  BigInt B(std::string_view("987654321098765432109876543210"));
  EXPECT_EQ((A * B).toString(),
            "121932631137021795226185032733622923332237463801111263526900");
}

TEST(BigIntTest, DivModTruncatedSemantics) {
  // C semantics: quotient toward zero, remainder signed like the dividend.
  struct Case {
    int64_t N, D, Q, R;
  } Cases[] = {
      {7, 2, 3, 1},   {-7, 2, -3, -1}, {7, -2, -3, 1},
      {-7, -2, 3, -1}, {6, 3, 2, 0},   {0, 5, 0, 0},
  };
  for (const Case &C : Cases) {
    BigInt Q, R;
    BigInt::divMod(BigInt(C.N), BigInt(C.D), Q, R);
    EXPECT_EQ(Q.toInt64(), C.Q) << C.N << "/" << C.D;
    EXPECT_EQ(R.toInt64(), C.R) << C.N << "%" << C.D;
  }
}

TEST(BigIntTest, FloorDiv) {
  EXPECT_EQ(BigInt(7).floorDiv(BigInt(2)).toInt64(), 3);
  EXPECT_EQ(BigInt(-7).floorDiv(BigInt(2)).toInt64(), -4);
  EXPECT_EQ(BigInt(7).floorDiv(BigInt(-2)).toInt64(), -4);
  EXPECT_EQ(BigInt(-7).floorDiv(BigInt(-2)).toInt64(), 3);
  EXPECT_EQ(BigInt(-8).floorDiv(BigInt(2)).toInt64(), -4);
}

TEST(BigIntTest, GcdLcm) {
  EXPECT_EQ(BigInt::gcd(BigInt(12), BigInt(18)).toInt64(), 6);
  EXPECT_EQ(BigInt::gcd(BigInt(-12), BigInt(18)).toInt64(), 6);
  EXPECT_EQ(BigInt::gcd(BigInt(0), BigInt(5)).toInt64(), 5);
  EXPECT_EQ(BigInt::gcd(BigInt(0), BigInt(0)).toInt64(), 0);
  EXPECT_EQ(BigInt::lcm(BigInt(4), BigInt(6)).toInt64(), 12);
  EXPECT_EQ(BigInt::lcm(BigInt(0), BigInt(6)).toInt64(), 0);
}

// Property sweep: all arithmetic agrees with __int128 on random 64-bit
// inputs (products and sums verified in 128-bit, no overflow).
TEST(BigIntTest, RandomizedAgainstInt128) {
  std::mt19937_64 Rng(12345);
  for (int Iter = 0; Iter < 2000; ++Iter) {
    int64_t X = static_cast<int64_t>(Rng()) >> (Rng() % 32);
    int64_t Y = static_cast<int64_t>(Rng()) >> (Rng() % 32);
    BigInt A(X), B(Y);
    __int128 Sum = static_cast<__int128>(X) + Y;
    __int128 Diff = static_cast<__int128>(X) - Y;
    __int128 Prod = static_cast<__int128>(X) * Y;
    auto toString128 = [](__int128 V) {
      if (V == 0)
        return std::string("0");
      bool Neg = V < 0;
      unsigned __int128 U = Neg ? -static_cast<unsigned __int128>(V)
                                : static_cast<unsigned __int128>(V);
      std::string S;
      while (U) {
        S.push_back(static_cast<char>('0' + static_cast<int>(U % 10)));
        U /= 10;
      }
      if (Neg)
        S.push_back('-');
      std::reverse(S.begin(), S.end());
      return S;
    };
    EXPECT_EQ((A + B).toString(), toString128(Sum));
    EXPECT_EQ((A - B).toString(), toString128(Diff));
    EXPECT_EQ((A * B).toString(), toString128(Prod));
    if (Y != 0) {
      EXPECT_EQ((A / B).toInt64(), X / Y);
      EXPECT_EQ((A % B).toInt64(), X % Y);
    }
    EXPECT_EQ(A.compare(B), X < Y ? -1 : (X == Y ? 0 : 1));
  }
}

// Property: (a/b)*b + a%b == a on random multi-limb values.
TEST(BigIntTest, DivModReconstruction) {
  std::mt19937_64 Rng(999);
  auto randomBig = [&Rng]() {
    std::string S = std::to_string(1 + Rng() % 9);
    int Digits = static_cast<int>(Rng() % 40);
    for (int I = 0; I < Digits; ++I)
      S.push_back(static_cast<char>('0' + Rng() % 10));
    BigInt B{std::string_view(S)};
    return (Rng() & 1) ? -B : B;
  };
  for (int Iter = 0; Iter < 300; ++Iter) {
    BigInt A = randomBig();
    BigInt B = randomBig();
    if (B.isZero())
      continue;
    BigInt Q, R;
    BigInt::divMod(A, B, Q, R);
    EXPECT_EQ(Q * B + R, A);
    EXPECT_TRUE(R.abs() < B.abs());
    // Remainder has the dividend's sign (or is zero).
    if (!R.isZero()) {
      EXPECT_EQ(R.sign(), A.sign());
    }
  }
}

TEST(RationalTest, NormalizationInvariant) {
  Rational R = Rational::fraction(6, -4);
  EXPECT_EQ(R.toString(), "-3/2");
  EXPECT_TRUE(R.denominator() > BigInt(0));
  EXPECT_EQ(Rational::fraction(0, 7).toString(), "0");
  EXPECT_EQ(Rational::fraction(4, 2).toString(), "2");
  EXPECT_TRUE(Rational::fraction(4, 2).isInteger());
}

TEST(RationalTest, Arithmetic) {
  Rational Half = Rational::fraction(1, 2);
  Rational Third = Rational::fraction(1, 3);
  EXPECT_EQ((Half + Third).toString(), "5/6");
  EXPECT_EQ((Half - Third).toString(), "1/6");
  EXPECT_EQ((Half * Third).toString(), "1/6");
  EXPECT_EQ((Half / Third).toString(), "3/2");
  EXPECT_EQ((-Half).toString(), "-1/2");
  EXPECT_EQ(Half.inverse().toString(), "2");
}

TEST(RationalTest, Comparisons) {
  EXPECT_LT(Rational::fraction(1, 3), Rational::fraction(1, 2));
  EXPECT_LT(Rational::fraction(-1, 2), Rational::fraction(-1, 3));
  EXPECT_EQ(Rational::fraction(2, 4), Rational::fraction(1, 2));
  EXPECT_GT(Rational(1), Rational::fraction(99, 100));
}

TEST(RationalTest, FloorCeil) {
  EXPECT_EQ(Rational::fraction(7, 2).floor().toInt64(), 3);
  EXPECT_EQ(Rational::fraction(7, 2).ceil().toInt64(), 4);
  EXPECT_EQ(Rational::fraction(-7, 2).floor().toInt64(), -4);
  EXPECT_EQ(Rational::fraction(-7, 2).ceil().toInt64(), -3);
  EXPECT_EQ(Rational(5).floor().toInt64(), 5);
  EXPECT_EQ(Rational(5).ceil().toInt64(), 5);
}

TEST(RationalTest, FromString) {
  Rational R;
  EXPECT_TRUE(Rational::fromString("-3/9", R));
  EXPECT_EQ(R.toString(), "-1/3");
  EXPECT_TRUE(Rational::fromString("17", R));
  EXPECT_EQ(R.toString(), "17");
  EXPECT_FALSE(Rational::fromString("1/0", R));
  EXPECT_FALSE(Rational::fromString("x", R));
}

TEST(DeltaRationalTest, LexicographicOrder) {
  DeltaRational A(Rational(1));                       // 1
  DeltaRational B(Rational(1), Rational(-1));         // 1 - d
  DeltaRational C(Rational(1), Rational(1));          // 1 + d
  DeltaRational D(Rational(2), Rational(-1000));      // 2 - 1000d
  EXPECT_LT(B, A);
  EXPECT_LT(A, C);
  EXPECT_LT(C, D);
  EXPECT_EQ(A.compare(A), 0);
}

TEST(DeltaRationalTest, VectorSpaceOps) {
  DeltaRational A(Rational(3), Rational(1));
  DeltaRational B(Rational(1), Rational(-2));
  EXPECT_EQ((A + B), DeltaRational(Rational(4), Rational(-1)));
  EXPECT_EQ((A - B), DeltaRational(Rational(2), Rational(3)));
  EXPECT_EQ(A * Rational(-2), DeltaRational(Rational(-6), Rational(-2)));
  EXPECT_EQ((-A), DeltaRational(Rational(-3), Rational(-1)));
}

// Parameterized property: rational arithmetic is a field — check axioms on
// a grid of small fractions.
class RationalFieldTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RationalFieldTest, FieldAxioms) {
  auto [NumA, NumB] = GetParam();
  Rational A = Rational::fraction(NumA, 7);
  Rational B = Rational::fraction(NumB, 5);
  Rational C = Rational::fraction(3, 11);
  EXPECT_EQ(A + B, B + A);
  EXPECT_EQ(A * B, B * A);
  EXPECT_EQ((A + B) + C, A + (B + C));
  EXPECT_EQ((A * B) * C, A * (B * C));
  EXPECT_EQ(A * (B + C), A * B + A * C);
  EXPECT_EQ(A + Rational(0), A);
  EXPECT_EQ(A * Rational(1), A);
  EXPECT_EQ(A - A, Rational(0));
  if (!A.isZero()) {
    EXPECT_EQ(A * A.inverse(), Rational(1));
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, RationalFieldTest,
                         ::testing::Combine(::testing::Range(-4, 5),
                                            ::testing::Range(-4, 5)));

} // namespace
