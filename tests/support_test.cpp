//===- tests/support_test.cpp - BigInt/Rational unit tests ----------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/BigInt.h"
#include "support/DeltaRational.h"
#include "support/Rational.h"

#include <gtest/gtest.h>

#include <random>

using namespace pathinv;

namespace {

TEST(BigIntTest, ZeroBasics) {
  BigInt Zero;
  EXPECT_TRUE(Zero.isZero());
  EXPECT_EQ(Zero.sign(), 0);
  EXPECT_EQ(Zero.toString(), "0");
  EXPECT_EQ(Zero + Zero, Zero);
  EXPECT_EQ(Zero * BigInt(42), Zero);
  EXPECT_EQ((-Zero), Zero);
}

TEST(BigIntTest, Int64RoundTrip) {
  for (int64_t V : {int64_t(0), int64_t(1), int64_t(-1), int64_t(42),
                    int64_t(-1234567890123LL), INT64_MAX, INT64_MIN}) {
    BigInt B(V);
    EXPECT_TRUE(B.fitsInt64()) << V;
    EXPECT_EQ(B.toInt64(), V);
    EXPECT_EQ(B.toString(), std::to_string(V));
  }
}

TEST(BigIntTest, StringRoundTrip) {
  const char *Cases[] = {"0", "1", "-1", "999999999999999999999999999999",
                         "-123456789012345678901234567890123456789"};
  for (const char *Text : Cases) {
    BigInt B{std::string_view(Text)};
    EXPECT_EQ(B.toString(), Text);
  }
}

TEST(BigIntTest, RejectsMalformedStrings) {
  BigInt Out;
  EXPECT_FALSE(BigInt::fromString("", Out));
  EXPECT_FALSE(BigInt::fromString("-", Out));
  EXPECT_FALSE(BigInt::fromString("12a", Out));
  EXPECT_FALSE(BigInt::fromString("1.5", Out));
  EXPECT_TRUE(BigInt::fromString("+17", Out));
  EXPECT_EQ(Out.toInt64(), 17);
}

TEST(BigIntTest, LargeMultiplication) {
  BigInt A(std::string_view("123456789012345678901234567890"));
  BigInt B(std::string_view("987654321098765432109876543210"));
  EXPECT_EQ((A * B).toString(),
            "121932631137021795226185032733622923332237463801111263526900");
}

TEST(BigIntTest, DivModTruncatedSemantics) {
  // C semantics: quotient toward zero, remainder signed like the dividend.
  struct Case {
    int64_t N, D, Q, R;
  } Cases[] = {
      {7, 2, 3, 1},   {-7, 2, -3, -1}, {7, -2, -3, 1},
      {-7, -2, 3, -1}, {6, 3, 2, 0},   {0, 5, 0, 0},
  };
  for (const Case &C : Cases) {
    BigInt Q, R;
    BigInt::divMod(BigInt(C.N), BigInt(C.D), Q, R);
    EXPECT_EQ(Q.toInt64(), C.Q) << C.N << "/" << C.D;
    EXPECT_EQ(R.toInt64(), C.R) << C.N << "%" << C.D;
  }
}

TEST(BigIntTest, FloorDiv) {
  EXPECT_EQ(BigInt(7).floorDiv(BigInt(2)).toInt64(), 3);
  EXPECT_EQ(BigInt(-7).floorDiv(BigInt(2)).toInt64(), -4);
  EXPECT_EQ(BigInt(7).floorDiv(BigInt(-2)).toInt64(), -4);
  EXPECT_EQ(BigInt(-7).floorDiv(BigInt(-2)).toInt64(), 3);
  EXPECT_EQ(BigInt(-8).floorDiv(BigInt(2)).toInt64(), -4);
}

TEST(BigIntTest, GcdLcm) {
  EXPECT_EQ(BigInt::gcd(BigInt(12), BigInt(18)).toInt64(), 6);
  EXPECT_EQ(BigInt::gcd(BigInt(-12), BigInt(18)).toInt64(), 6);
  EXPECT_EQ(BigInt::gcd(BigInt(0), BigInt(5)).toInt64(), 5);
  EXPECT_EQ(BigInt::gcd(BigInt(0), BigInt(0)).toInt64(), 0);
  EXPECT_EQ(BigInt::lcm(BigInt(4), BigInt(6)).toInt64(), 12);
  EXPECT_EQ(BigInt::lcm(BigInt(0), BigInt(6)).toInt64(), 0);
}

// Property sweep: all arithmetic agrees with __int128 on random 64-bit
// inputs (products and sums verified in 128-bit, no overflow).
TEST(BigIntTest, RandomizedAgainstInt128) {
  std::mt19937_64 Rng(12345);
  for (int Iter = 0; Iter < 2000; ++Iter) {
    int64_t X = static_cast<int64_t>(Rng()) >> (Rng() % 32);
    int64_t Y = static_cast<int64_t>(Rng()) >> (Rng() % 32);
    BigInt A(X), B(Y);
    __int128 Sum = static_cast<__int128>(X) + Y;
    __int128 Diff = static_cast<__int128>(X) - Y;
    __int128 Prod = static_cast<__int128>(X) * Y;
    auto toString128 = [](__int128 V) {
      if (V == 0)
        return std::string("0");
      bool Neg = V < 0;
      unsigned __int128 U = Neg ? -static_cast<unsigned __int128>(V)
                                : static_cast<unsigned __int128>(V);
      std::string S;
      while (U) {
        S.push_back(static_cast<char>('0' + static_cast<int>(U % 10)));
        U /= 10;
      }
      if (Neg)
        S.push_back('-');
      std::reverse(S.begin(), S.end());
      return S;
    };
    EXPECT_EQ((A + B).toString(), toString128(Sum));
    EXPECT_EQ((A - B).toString(), toString128(Diff));
    EXPECT_EQ((A * B).toString(), toString128(Prod));
    if (Y != 0) {
      EXPECT_EQ((A / B).toInt64(), X / Y);
      EXPECT_EQ((A % B).toInt64(), X % Y);
    }
    EXPECT_EQ(A.compare(B), X < Y ? -1 : (X == Y ? 0 : 1));
  }
}

// Property: (a/b)*b + a%b == a on random multi-limb values.
TEST(BigIntTest, DivModReconstruction) {
  std::mt19937_64 Rng(999);
  auto randomBig = [&Rng]() {
    std::string S = std::to_string(1 + Rng() % 9);
    int Digits = static_cast<int>(Rng() % 40);
    for (int I = 0; I < Digits; ++I)
      S.push_back(static_cast<char>('0' + Rng() % 10));
    BigInt B{std::string_view(S)};
    return (Rng() & 1) ? -B : B;
  };
  for (int Iter = 0; Iter < 300; ++Iter) {
    BigInt A = randomBig();
    BigInt B = randomBig();
    if (B.isZero())
      continue;
    BigInt Q, R;
    BigInt::divMod(A, B, Q, R);
    EXPECT_EQ(Q * B + R, A);
    EXPECT_TRUE(R.abs() < B.abs());
    // Remainder has the dividend's sign (or is zero).
    if (!R.isZero()) {
      EXPECT_EQ(R.sign(), A.sign());
    }
  }
}

// --- Representation-transition coverage for the inline-limb fast path ---

TEST(BigIntRepresentationTest, PromotionOnEveryOperation) {
  // Addition/subtraction at the int64 edges.
  BigInt Max(INT64_MAX), Min(INT64_MIN), One(1);
  EXPECT_TRUE(Max.isInline());
  EXPECT_TRUE(Min.isInline());
  BigInt Over = Max + One;
  EXPECT_FALSE(Over.isInline());
  EXPECT_FALSE(Over.fitsInt64());
  EXPECT_EQ(Over.toString(), "9223372036854775808");
  BigInt Under = Min - One;
  EXPECT_FALSE(Under.isInline());
  EXPECT_EQ(Under.toString(), "-9223372036854775809");

  // Multiplication.
  BigInt Sq = BigInt(INT64_C(4000000000)) * BigInt(INT64_C(4000000000));
  EXPECT_FALSE(Sq.isInline());
  EXPECT_EQ(Sq.toString(), "16000000000000000000");

  // Negation of INT64_MIN.
  EXPECT_FALSE((-Min).isInline());
  EXPECT_EQ((-Min).toString(), "9223372036854775808");
  EXPECT_FALSE(Min.abs().isInline());

  // Division: the only inline/inline quotient that overflows.
  BigInt Q = Min / BigInt(-1);
  EXPECT_FALSE(Q.isInline());
  EXPECT_EQ(Q.toString(), "9223372036854775808");

  // gcd with a 2^63 magnitude.
  EXPECT_FALSE(BigInt::gcd(Min, BigInt(0)).isInline());

  // In-place forms promote too.
  BigInt X = Max;
  X += One;
  EXPECT_FALSE(X.isInline());
  X -= One;
  EXPECT_TRUE(X.isInline());
  EXPECT_EQ(X, Max);
  BigInt Y(INT64_C(1) << 62);
  Y *= BigInt(4);
  EXPECT_FALSE(Y.isInline());
  BigInt Z(1);
  Z.addMul(Max, Max);
  EXPECT_FALSE(Z.isInline());
  EXPECT_EQ(Z.toString(), "85070591730234615847396907784232501250");
}

TEST(BigIntRepresentationTest, DemotionBackToInline) {
  BigInt Big = BigInt(INT64_MAX) + BigInt(INT64_MAX);
  ASSERT_FALSE(Big.isInline());
  // Every shrinking operation demotes back to the inline encoding.
  EXPECT_TRUE((Big - BigInt(INT64_MAX)).isInline());
  EXPECT_TRUE((Big / BigInt(2)).isInline());
  EXPECT_TRUE((Big % (Big - BigInt(1))).isInline());
  EXPECT_TRUE((Big * BigInt(0)).isInline());
  // Subtraction meeting exactly at INT64_MIN must demote (heap magnitude
  // 2^63 with negative sign IS int64-representable).
  BigInt NegOver = BigInt(INT64_MIN) - BigInt(1);
  EXPECT_TRUE((NegOver + BigInt(1)).isInline());
  EXPECT_EQ(NegOver + BigInt(1), BigInt(INT64_MIN));
  // Canonicality: equal values always share a representation, so hashes
  // and equality never need cross-encoding reconciliation.
  BigInt ViaHeap = (BigInt(INT64_MAX) + BigInt(1)) - BigInt(1);
  EXPECT_TRUE(ViaHeap.isInline());
  EXPECT_EQ(ViaHeap, BigInt(INT64_MAX));
  EXPECT_EQ(ViaHeap.hash(), BigInt(INT64_MAX).hash());
}

TEST(BigIntRepresentationTest, SelfAliasingOps) {
  // Inline self-aliasing.
  BigInt X(7);
  X += X;
  EXPECT_EQ(X.toInt64(), 14);
  X.addMul(X, X); // x += x*x
  EXPECT_EQ(X.toInt64(), 14 + 14 * 14);
  X.subMul(X, BigInt(1)); // x -= x*1
  EXPECT_TRUE(X.isZero());

  // Self-aliasing across the promotion boundary.
  BigInt Y(INT64_C(6000000000));
  Y *= Y;
  EXPECT_FALSE(Y.isInline());
  EXPECT_EQ(Y.toString(), "36000000000000000000");

  // Heap self-aliasing.
  BigInt H = BigInt(INT64_MAX) + BigInt(INT64_MAX);
  BigInt HBefore = H;
  H += H;
  EXPECT_EQ(H, HBefore * BigInt(2));
  H.addMul(H, BigInt(1)); // h += h
  EXPECT_EQ(H, HBefore * BigInt(4));

  // divMod with aliased outputs.
  BigInt A(1234567), B(1000);
  BigInt::divMod(A, B, A, B); // Quot aliases Num, Rem aliases Den.
  EXPECT_EQ(A.toInt64(), 1234);
  EXPECT_EQ(B.toInt64(), 567);
  BigInt C = BigInt("123456789012345678901234567890");
  BigInt D = BigInt("987654321098765432");
  BigInt CBefore = C, DBefore = D;
  BigInt::divMod(C, D, C, D);
  EXPECT_EQ(C * DBefore + D, CBefore);
}

TEST(BigIntRepresentationTest, CopyAndMoveBothEncodings) {
  // Inline copy/move.
  BigInt I(42);
  BigInt ICopy = I;
  BigInt IMoved = std::move(I);
  EXPECT_EQ(ICopy.toInt64(), 42);
  EXPECT_EQ(IMoved.toInt64(), 42);

  // Heap copy is independent of the source.
  BigInt H = BigInt(INT64_MAX) + BigInt(1);
  BigInt HCopy = H;
  HCopy += BigInt(1);
  EXPECT_EQ(H.toString(), "9223372036854775808");
  EXPECT_EQ(HCopy.toString(), "9223372036854775809");

  // Heap move leaves the source in the canonical zero state (still usable).
  BigInt HMoved = std::move(H);
  EXPECT_EQ(HMoved.toString(), "9223372036854775808");
  EXPECT_TRUE(H.isZero());         // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(H.isInline());       // NOLINT(bugprone-use-after-move)
  H = BigInt(5);
  EXPECT_EQ(H.toInt64(), 5);

  // Assignments across encodings, both directions.
  BigInt X(3);
  X = HMoved; // inline <- heap (copy)
  EXPECT_EQ(X, HMoved);
  BigInt Y = BigInt(INT64_MIN) - BigInt(2);
  Y = BigInt(9); // heap <- inline
  EXPECT_TRUE(Y.isInline());
  EXPECT_EQ(Y.toInt64(), 9);
  Y = std::move(X); // heap-capable <- heap (move)
  EXPECT_EQ(Y, HMoved);
  BigInt &YAlias = Y; // self-assign through an alias stays intact
  Y = YAlias;
  EXPECT_EQ(Y, HMoved);
}

TEST(RationalRepresentationTest, TransitionsThroughOperations) {
  // Promotion via accumulate, demotion via cancellation.
  Rational Acc(1);
  Rational Big(INT64_MAX);
  Acc.addMul(Big, Big);
  EXPECT_FALSE(Acc.numerator().fitsInt64());
  Acc.subMul(Big, Big);
  EXPECT_EQ(Acc, Rational(1));
  EXPECT_TRUE(Acc.numerator().fitsInt64());

  // Denominator overflow in +: 1/p + 1/q with p*q > int64.
  Rational P = Rational(1) / Rational(INT64_C(4000000001));
  Rational Q = Rational(1) / Rational(INT64_C(4000000003));
  Rational S = P + Q;
  EXPECT_FALSE(S.denominator().fitsInt64());
  Rational Back = S - Q;
  EXPECT_EQ(Back, P);
  EXPECT_TRUE(Back.denominator().fitsInt64());

  // Self-aliasing accumulate.
  Rational X = Rational::fraction(3, 2);
  X.addMul(X, X); // x += x*x = 3/2 + 9/4 = 15/4
  EXPECT_EQ(X.toString(), "15/4");
  X.subMul(X, Rational(1));
  EXPECT_TRUE(X.isZero());
  EXPECT_TRUE(X.denominator().isOne());

  // INT64_MIN numerators flow through every operator.
  Rational M(INT64_MIN);
  EXPECT_EQ((M * Rational(-1)).toString(), "9223372036854775808");
  EXPECT_EQ(M.inverse().toString(), "-1/9223372036854775808");
  EXPECT_EQ((M / M), Rational(1));
  EXPECT_EQ((M + M).toString(), "-18446744073709551616");
}

TEST(RationalTest, NormalizationInvariant) {
  Rational R = Rational::fraction(6, -4);
  EXPECT_EQ(R.toString(), "-3/2");
  EXPECT_TRUE(R.denominator() > BigInt(0));
  EXPECT_EQ(Rational::fraction(0, 7).toString(), "0");
  EXPECT_EQ(Rational::fraction(4, 2).toString(), "2");
  EXPECT_TRUE(Rational::fraction(4, 2).isInteger());
}

TEST(RationalTest, Arithmetic) {
  Rational Half = Rational::fraction(1, 2);
  Rational Third = Rational::fraction(1, 3);
  EXPECT_EQ((Half + Third).toString(), "5/6");
  EXPECT_EQ((Half - Third).toString(), "1/6");
  EXPECT_EQ((Half * Third).toString(), "1/6");
  EXPECT_EQ((Half / Third).toString(), "3/2");
  EXPECT_EQ((-Half).toString(), "-1/2");
  EXPECT_EQ(Half.inverse().toString(), "2");
}

TEST(RationalTest, Comparisons) {
  EXPECT_LT(Rational::fraction(1, 3), Rational::fraction(1, 2));
  EXPECT_LT(Rational::fraction(-1, 2), Rational::fraction(-1, 3));
  EXPECT_EQ(Rational::fraction(2, 4), Rational::fraction(1, 2));
  EXPECT_GT(Rational(1), Rational::fraction(99, 100));
}

TEST(RationalTest, FloorCeil) {
  EXPECT_EQ(Rational::fraction(7, 2).floor().toInt64(), 3);
  EXPECT_EQ(Rational::fraction(7, 2).ceil().toInt64(), 4);
  EXPECT_EQ(Rational::fraction(-7, 2).floor().toInt64(), -4);
  EXPECT_EQ(Rational::fraction(-7, 2).ceil().toInt64(), -3);
  EXPECT_EQ(Rational(5).floor().toInt64(), 5);
  EXPECT_EQ(Rational(5).ceil().toInt64(), 5);
}

TEST(RationalTest, FromString) {
  Rational R;
  EXPECT_TRUE(Rational::fromString("-3/9", R));
  EXPECT_EQ(R.toString(), "-1/3");
  EXPECT_TRUE(Rational::fromString("17", R));
  EXPECT_EQ(R.toString(), "17");
  EXPECT_FALSE(Rational::fromString("1/0", R));
  EXPECT_FALSE(Rational::fromString("x", R));
}

TEST(DeltaRationalTest, LexicographicOrder) {
  DeltaRational A(Rational(1));                       // 1
  DeltaRational B(Rational(1), Rational(-1));         // 1 - d
  DeltaRational C(Rational(1), Rational(1));          // 1 + d
  DeltaRational D(Rational(2), Rational(-1000));      // 2 - 1000d
  EXPECT_LT(B, A);
  EXPECT_LT(A, C);
  EXPECT_LT(C, D);
  EXPECT_EQ(A.compare(A), 0);
}

TEST(DeltaRationalTest, VectorSpaceOps) {
  DeltaRational A(Rational(3), Rational(1));
  DeltaRational B(Rational(1), Rational(-2));
  EXPECT_EQ((A + B), DeltaRational(Rational(4), Rational(-1)));
  EXPECT_EQ((A - B), DeltaRational(Rational(2), Rational(3)));
  EXPECT_EQ(A * Rational(-2), DeltaRational(Rational(-6), Rational(-2)));
  EXPECT_EQ((-A), DeltaRational(Rational(-3), Rational(-1)));
}

// Parameterized property: rational arithmetic is a field — check axioms on
// a grid of small fractions.
class RationalFieldTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RationalFieldTest, FieldAxioms) {
  auto [NumA, NumB] = GetParam();
  Rational A = Rational::fraction(NumA, 7);
  Rational B = Rational::fraction(NumB, 5);
  Rational C = Rational::fraction(3, 11);
  EXPECT_EQ(A + B, B + A);
  EXPECT_EQ(A * B, B * A);
  EXPECT_EQ((A + B) + C, A + (B + C));
  EXPECT_EQ((A * B) * C, A * (B * C));
  EXPECT_EQ(A * (B + C), A * B + A * C);
  EXPECT_EQ(A + Rational(0), A);
  EXPECT_EQ(A * Rational(1), A);
  EXPECT_EQ(A - A, Rational(0));
  if (!A.isZero()) {
    EXPECT_EQ(A * A.inverse(), Rational(1));
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, RationalFieldTest,
                         ::testing::Combine(::testing::Range(-4, 5),
                                            ::testing::Range(-4, 5)));

} // namespace
