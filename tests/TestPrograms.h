//===- tests/TestPrograms.h - Shared PIL sources for tests -----*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's example programs (Section 2) in PIL, shared by tests and
/// benchmarks.
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_TESTS_TESTPROGRAMS_H
#define PATHINV_TESTS_TESTPROGRAMS_H

#include <string>

namespace pathinv::testprogs {

/// Figure 1(a): FORWARD. Correct; needs the invariant a+b = 3i.
inline const char *Forward = R"(
proc forward(n) {
  var i, a, b;
  assume(n >= 0);
  i = 0; a = 0; b = 0;
  while (i < n) {
    if (*) {
      a = a + 1;
      b = b + 2;
    } else {
      a = a + 2;
      b = b + 1;
    }
    i = i + 1;
  }
  assert(a + b == 3*n);
}
)";

/// Figure 2(a): INITCHECK. Correct; needs forall k: 0<=k<n -> a[k]=0.
inline const char *InitCheck = R"(
proc init_check(a[], n) {
  var i;
  i = 0;
  while (i < n) {
    a[i] = 0;
    i = i + 1;
  }
  i = 0;
  while (i < n) {
    assert(a[i] == 0);
    i = i + 1;
  }
}
)";

/// Figure 3: PARTITION. Correct; needs two quantified loop invariants.
inline const char *Partition = R"(
proc partition(a[], n) {
  var i, gelen, ltlen;
  array ge, lt;
  gelen = 0; ltlen = 0;
  i = 0;
  while (i < n) {
    if (a[i] >= 0) {
      ge[gelen] = a[i];
      gelen = gelen + 1;
    } else {
      lt[ltlen] = a[i];
      ltlen = ltlen + 1;
    }
    i = i + 1;
  }
  i = 0;
  while (i < gelen) {
    assert(ge[i] >= 0);
    i = i + 1;
  }
  i = 0;
  while (i < ltlen) {
    assert(lt[i] < 0);
    i = i + 1;
  }
}
)";

/// Section 6: the buggy INITCHECK variant — writes 1, asserts 0. Unsafe.
inline const char *InitCheckBuggy = R"(
proc init_buggy(a[], n) {
  var i;
  assume(n >= 1);
  i = 0;
  while (i < n) {
    a[i] = 1;
    i = i + 1;
  }
  assert(a[0] == 0);
}
)";

/// A scalar-only unsafe program: reachable assertion failure.
inline const char *ScalarBug = R"(
proc scalar_bug(n) {
  var x;
  x = 0;
  if (n > 3) {
    x = n + 1;
  }
  assert(x <= 4);
}
)";

/// Safe straight-line program (no loops): provable by plain CEGAR.
inline const char *StraightSafe = R"(
proc straight(x) {
  var y;
  assume(x >= 0);
  y = x + 1;
  assert(y >= 1);
}
)";

/// A family of \p K sequential nondeterministic loops, each guarding its
/// own assertion: every loop needs its own refinement, so a verification
/// run refines at least K times. Refinement N+1 concerns loop N+1 only —
/// the workload behind the `refinement_reuse` benchmark, where the
/// persistent-ARG engine keeps the already-verified prefix while the
/// restart engine re-explores everything per refinement.
inline std::string sequentialLoops(int K) {
  std::string Src = "proc reuse(n) {\n  var i";
  for (int J = 0; J < K; ++J)
    Src += ", a" + std::to_string(J);
  Src += ";\n  assume(n >= 0);\n";
  for (int J = 0; J < K; ++J) {
    std::string A = "a" + std::to_string(J);
    std::string Lo = std::to_string(J);
    Src += "  i = 0; " + A + " = " + Lo + ";\n";
    Src += "  while (i < n) { if (*) { " + A + " = " + A +
           " + 1; } else { " + A + " = " + A + " + 2; } i = i + 1; }\n";
    Src += "  assert(" + A + " >= " + Lo + ");\n";
  }
  Src += "}\n";
  return Src;
}

} // namespace pathinv::testprogs

#endif // PATHINV_TESTS_TESTPROGRAMS_H
